// Package guardrails implements the answer-validation shields of §6: the
// ROUGE-L topical guardrail, the citation guardrail, the clarification-
// requirement guardrail, and a rule-based content filter standing in for
// the Azure OpenAI Content Filter. When a guardrail invalidates an answer,
// UniAsk returns an apology message but still shows the retrieved document
// list — a guardrail trigger is a failure of the generation module, not of
// the whole system.
package guardrails

import (
	"strings"

	"uniask/internal/rouge"
)

// Trigger identifies which guardrail invalidated an answer.
type Trigger int

// Guardrail outcomes, in the order Table 5 reports them.
const (
	// None means the answer passed every guardrail.
	None Trigger = iota
	// Citation means the answer contained no citation to the context.
	Citation
	// Rouge means the answer's best ROUGE-L against the context fell below
	// the threshold.
	Rouge
	// Clarification means the answer ended with a request for more details.
	Clarification
	// Content means the user's question was blocked by the content filter.
	Content
)

// String returns the trigger name.
func (t Trigger) String() string {
	switch t {
	case None:
		return "none"
	case Citation:
		return "citation"
	case Rouge:
		return "rouge"
	case Clarification:
		return "clarification"
	case Content:
		return "content-filter"
	}
	return "unknown"
}

// DefaultRougeThreshold is the ROUGE-L threshold the paper set heuristically
// after exploratory experiments on real user questions.
const DefaultRougeThreshold = 0.15

// Config parameterizes the guardrail pipeline.
type Config struct {
	// RougeThreshold defaults to DefaultRougeThreshold.
	RougeThreshold float64
	// DisableRouge, DisableCitation, DisableClarification switch individual
	// guardrails off (ablation experiments).
	DisableRouge         bool
	DisableCitation      bool
	DisableClarification bool
}

// Pipeline applies the guardrails in order.
type Pipeline struct {
	cfg    Config
	filter *ContentFilter
}

// New returns a pipeline with the given config and the default content
// filter.
func New(cfg Config) *Pipeline {
	if cfg.RougeThreshold == 0 {
		cfg.RougeThreshold = DefaultRougeThreshold
	}
	return &Pipeline{cfg: cfg, filter: NewContentFilter()}
}

// ApologyMessage is shown in place of an invalidated answer.
const ApologyMessage = "Ci scusiamo: il sistema non è riuscito a generare una risposta affidabile per questa domanda. Di seguito trovi comunque i documenti recuperati."

// ClarificationMessage invites the user to reformulate with more details.
const ClarificationMessage = "La domanda è troppo generica per fornire una risposta completa: ti invitiamo a riformularla aggiungendo maggiori dettagli."

// CheckQuestion runs the content filter over the user's question before any
// retrieval or generation happens.
func (p *Pipeline) CheckQuestion(question string) Trigger {
	if p.filter.Blocked(question) {
		return Content
	}
	return None
}

// clarificationMarkers are phrasings that signal the answer ends with a
// request for further details.
var clarificationMarkers = []string{
	"maggiori dettagli",
	"ulteriori dettagli",
	"più informazioni sulla tua richiesta",
	"puoi specificare meglio",
	"potresti riformulare",
}

// CheckAnswer validates a generated answer against its retrieval context
// (the top-m chunk texts) and the citations extracted from it. It returns
// the first guardrail that fires, or None.
//
// Order: the clarification check runs first because an answer that asks the
// user for details is invalid regardless of grounding; then the citation
// guardrail (the paper found that answers without citations were reliably
// hallucinated); then the ROUGE-L topical guardrail.
func (p *Pipeline) CheckAnswer(answer string, citations []string, contexts []string) Trigger {
	if !p.cfg.DisableClarification && endsWithClarification(answer) {
		return Clarification
	}
	if !p.cfg.DisableCitation && len(citations) == 0 {
		return Citation
	}
	if !p.cfg.DisableRouge {
		if rouge.MaxLAgainst(answer, contexts) < p.cfg.RougeThreshold {
			return Rouge
		}
	}
	return None
}

// endsWithClarification reports whether the trailing sentence of the answer
// requests more details from the user.
func endsWithClarification(answer string) bool {
	a := strings.ToLower(strings.TrimSpace(answer))
	// Look at the tail of the answer only: a clarification request embedded
	// mid-answer (e.g. quoted from a document) does not invalidate it.
	tail := a
	if len(tail) > 120 {
		tail = tail[len(tail)-120:]
	}
	if !strings.HasSuffix(a, "?") {
		return false
	}
	for _, m := range clarificationMarkers {
		if strings.Contains(tail, m) {
			return true
		}
	}
	return false
}

// RougeThreshold exposes the configured threshold (for reports).
func (p *Pipeline) RougeThreshold() float64 { return p.cfg.RougeThreshold }
