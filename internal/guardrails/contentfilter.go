package guardrails

import "strings"

// ContentFilter is the rule-based substitute for the Azure OpenAI Content
// Filter: it blocks questions containing terms from the harm-category
// lexicons (hate, violence, self-harm, sexual, profanity). A production
// filter is a classifier; a lexicon preserves the pipeline behavior the
// experiments measure — a small fraction of user questions is blocked
// before reaching the model.
type ContentFilter struct {
	lexicon map[string]string // term -> category
}

// NewContentFilter builds the default Italian lexicon.
func NewContentFilter() *ContentFilter {
	f := &ContentFilter{lexicon: make(map[string]string)}
	add := func(category string, terms ...string) {
		for _, t := range terms {
			f.lexicon[t] = category
		}
	}
	add("profanity", "maledetto", "maledetta", "dannato", "dannata", "schifoso", "schifosa", "idiota", "cretino", "stupido")
	add("violence", "uccidere", "ammazzare", "sparare", "accoltellare", "aggredire", "picchiare")
	add("self-harm", "suicidio", "suicidarmi", "farmi del male", "autolesionismo")
	add("hate", "razzista", "discriminare gli stranieri")
	return f
}

// Blocked reports whether text triggers the filter.
func (f *ContentFilter) Blocked(text string) bool {
	_, blocked := f.Category(text)
	return blocked
}

// Category returns the first matching harm category.
func (f *ContentFilter) Category(text string) (string, bool) {
	lower := strings.ToLower(text)
	words := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == 'à' || r == 'è' || r == 'é' || r == 'ì' || r == 'ò' || r == 'ù' || r == ' ')
	})
	joined := strings.Join(words, " ")
	for _, w := range strings.Fields(joined) {
		if cat, ok := f.lexicon[w]; ok {
			return cat, true
		}
	}
	// Multi-word entries.
	for term, cat := range f.lexicon {
		if strings.Contains(term, " ") && strings.Contains(joined, term) {
			return cat, true
		}
	}
	return "", false
}

// AddTerm extends the lexicon (used by tests and deployments that maintain
// their own lists).
func (f *ContentFilter) AddTerm(category, term string) {
	f.lexicon[strings.ToLower(term)] = category
}
