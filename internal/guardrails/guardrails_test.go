package guardrails

import (
	"strings"
	"testing"
)

var contexts = []string{
	"Per bloccare la carta di credito è necessario chiamare il numero verde. Il servizio è attivo tutti i giorni.",
	"Il bonifico verso paesi extra SEPA richiede il codice BIC della banca beneficiaria.",
}

func TestGroundedAnswerPasses(t *testing.T) {
	p := New(Config{})
	answer := "Per bloccare la carta di credito è necessario chiamare il numero verde [doc1]."
	if got := p.CheckAnswer(answer, []string{"doc1"}, contexts); got != None {
		t.Fatalf("trigger = %v", got)
	}
}

func TestCitationGuardrail(t *testing.T) {
	p := New(Config{})
	answer := "Per bloccare la carta di credito è necessario chiamare il numero verde."
	if got := p.CheckAnswer(answer, nil, contexts); got != Citation {
		t.Fatalf("trigger = %v, want Citation", got)
	}
}

func TestRougeGuardrail(t *testing.T) {
	p := New(Config{})
	answer := "Le compagnie aeree applicano tariffe differenti per i bagagli in stiva durante la stagione estiva [doc1]."
	if got := p.CheckAnswer(answer, []string{"doc1"}, contexts); got != Rouge {
		t.Fatalf("trigger = %v, want Rouge", got)
	}
}

func TestClarificationGuardrail(t *testing.T) {
	p := New(Config{})
	answer := "Per bloccare la carta è necessario chiamare il numero verde [doc1]. Potresti fornire maggiori dettagli sulla tua richiesta?"
	if got := p.CheckAnswer(answer, []string{"doc1"}, contexts); got != Clarification {
		t.Fatalf("trigger = %v, want Clarification", got)
	}
}

func TestClarificationOnlyAtTail(t *testing.T) {
	p := New(Config{})
	// The phrase appears mid-answer but the answer does not end with a
	// question: must not trigger.
	answer := "Il modulo per maggiori dettagli è disponibile in filiale; per bloccare la carta di credito è necessario chiamare il numero verde del servizio clienti della banca [doc1]."
	if got := p.CheckAnswer(answer, []string{"doc1"}, contexts); got != None {
		t.Fatalf("trigger = %v, want None", got)
	}
}

func TestGuardrailOrder(t *testing.T) {
	p := New(Config{})
	// No citations AND off-topic AND ends with clarification: the
	// clarification check wins.
	answer := "Non saprei. Potresti fornire maggiori dettagli sulla tua richiesta?"
	if got := p.CheckAnswer(answer, nil, contexts); got != Clarification {
		t.Fatalf("trigger = %v, want Clarification first", got)
	}
}

func TestDisableFlags(t *testing.T) {
	p := New(Config{DisableCitation: true, DisableRouge: true, DisableClarification: true})
	answer := "Testo completamente scollegato dal contesto, senza citazioni. Potresti fornire maggiori dettagli sulla tua richiesta?"
	if got := p.CheckAnswer(answer, nil, contexts); got != None {
		t.Fatalf("disabled pipeline fired: %v", got)
	}
}

func TestRougeThresholdConfigurable(t *testing.T) {
	strict := New(Config{RougeThreshold: 0.9})
	// A partially grounded answer passes the default but fails at 0.9.
	answer := "Per bloccare la carta serve chiamare il numero verde come indicato dalla banca [doc1]."
	if got := New(Config{}).CheckAnswer(answer, []string{"doc1"}, contexts); got != None {
		t.Fatalf("default: %v", got)
	}
	if got := strict.CheckAnswer(answer, []string{"doc1"}, contexts); got != Rouge {
		t.Fatalf("strict: %v, want Rouge", got)
	}
	if New(Config{}).RougeThreshold() != DefaultRougeThreshold {
		t.Fatal("default threshold not applied")
	}
}

func TestCheckQuestionContentFilter(t *testing.T) {
	p := New(Config{})
	if got := p.CheckQuestion("Come posso bloccare la carta?"); got != None {
		t.Fatalf("benign question blocked: %v", got)
	}
	if got := p.CheckQuestion("questo maledetto sistema non funziona, come sbloccare la carta?"); got != Content {
		t.Fatalf("profanity not blocked: %v", got)
	}
}

func TestContentFilterCategories(t *testing.T) {
	f := NewContentFilter()
	cases := map[string]string{
		"voglio uccidere il tempo":        "violence",
		"il sistema è schifoso":           "profanity",
		"come discriminare gli stranieri": "hate",
	}
	for text, wantCat := range cases {
		cat, blocked := f.Category(text)
		if !blocked || cat != wantCat {
			t.Errorf("Category(%q) = %q,%v; want %q", text, cat, blocked, wantCat)
		}
	}
	if f.Blocked("come aprire un conto corrente") {
		t.Error("benign text blocked")
	}
}

func TestContentFilterCaseInsensitive(t *testing.T) {
	f := NewContentFilter()
	if !f.Blocked("MALEDETTO sistema") {
		t.Fatal("upper-case profanity not blocked")
	}
}

func TestContentFilterAddTerm(t *testing.T) {
	f := NewContentFilter()
	f.AddTerm("custom", "parolavietata")
	if !f.Blocked("contiene una parolavietata qui") {
		t.Fatal("added term not blocked")
	}
}

func TestTriggerString(t *testing.T) {
	names := map[Trigger]string{
		None: "none", Citation: "citation", Rouge: "rouge",
		Clarification: "clarification", Content: "content-filter",
	}
	for tr, want := range names {
		if tr.String() != want {
			t.Errorf("%d.String() = %q", tr, tr.String())
		}
	}
	if Trigger(99).String() != "unknown" {
		t.Error("unknown trigger name")
	}
}

func TestEmptyAnswerAndContexts(t *testing.T) {
	p := New(Config{})
	if got := p.CheckAnswer("", nil, nil); got != Citation {
		t.Fatalf("empty answer: %v", got)
	}
	answer := strings.Repeat("testo privo di fonti ", 3)
	if got := p.CheckAnswer(answer, []string{"doc1"}, nil); got != Rouge {
		t.Fatalf("no contexts with citation: %v", got)
	}
}
