package adapter

import (
	"math"
	"math/rand"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/vector"
)

func randUnit(rng *rand.Rand, dim int) vector.Vector {
	v := make(vector.Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return vector.Normalize(v)
}

func TestIdentityAtInit(t *testing.T) {
	ad := New(16, 4, 1)
	rng := rand.New(rand.NewSource(2))
	q := randUnit(rng, 16)
	y := ad.Apply(q)
	// a is zero-initialized, so Apply must be the identity (up to norm).
	for i := range q {
		if math.Abs(float64(y[i]-q[i])) > 1e-5 {
			t.Fatalf("not identity at init: %v vs %v", y[i], q[i])
		}
	}
}

func TestTrainNoData(t *testing.T) {
	ad := New(8, 2, 1)
	if _, err := ad.Train(nil, TrainConfig{}); err != ErrNoTriplets {
		t.Fatalf("err = %v", err)
	}
}

// TestTrainLearnsToSuppressNoiseDirection reproduces the adapter's job: a
// fixed noise direction is mixed into every query; training must learn to
// cancel it so queries align with their positives again.
func TestTrainLearnsToSuppressNoiseDirection(t *testing.T) {
	const dim = 32
	rng := rand.New(rand.NewSource(3))
	noise := randUnit(rng, dim)

	var triplets []Triplet
	for i := 0; i < 60; i++ {
		topic := randUnit(rng, dim)
		other := randUnit(rng, dim)
		// Query = topic + strong noise component.
		q := make(vector.Vector, dim)
		for j := range q {
			q[j] = topic[j] + 1.5*noise[j]
		}
		vector.Normalize(q)
		triplets = append(triplets, Triplet{Query: q, Positive: topic, Negative: other})
	}
	ad := New(dim, 4, 7)
	before := avgMarginGap(ad, triplets)
	if _, err := ad.Train(triplets, TrainConfig{Epochs: 30, LearningRate: 0.01, Margin: 1.0, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	after := avgMarginGap(ad, triplets)
	if after <= before+0.05 {
		t.Fatalf("training did not improve margin: before %.3f after %.3f", before, after)
	}
}

// avgMarginGap is the mean cos(adapted q, pos) - cos(adapted q, neg).
func avgMarginGap(ad *Adapter, trs []Triplet) float64 {
	total := 0.0
	for _, tr := range trs {
		y := ad.Apply(tr.Query)
		total += float64(vector.Cosine(y, tr.Positive) - vector.Cosine(y, tr.Negative))
	}
	return total / float64(len(trs))
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var trs []Triplet
	for i := 0; i < 20; i++ {
		trs = append(trs, Triplet{
			Query: randUnit(rng, 16), Positive: randUnit(rng, 16), Negative: randUnit(rng, 16),
		})
	}
	run := func() vector.Vector {
		ad := New(16, 4, 11)
		ad.Train(trs, TrainConfig{Epochs: 5, Seed: 3})
		return ad.Apply(trs[0].Query)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestApplyUnitNorm(t *testing.T) {
	ad := New(16, 4, 1)
	rng := rand.New(rand.NewSource(13))
	var trs []Triplet
	for i := 0; i < 10; i++ {
		trs = append(trs, Triplet{Query: randUnit(rng, 16), Positive: randUnit(rng, 16), Negative: randUnit(rng, 16)})
	}
	ad.Train(trs, TrainConfig{Epochs: 3})
	y := ad.Apply(randUnit(rng, 16))
	if math.Abs(float64(vector.Norm(y))-1) > 1e-5 {
		t.Fatalf("adapted vector not unit: %v", vector.Norm(y))
	}
}

func TestEmbedderWrapping(t *testing.T) {
	base := embedding.NewSynth(32, nil)
	ad := New(32, 4, 1)
	e := &Embedder{Base: base, Adapter: ad}
	if e.Dim() != 32 {
		t.Fatalf("dim = %d", e.Dim())
	}
	v := e.Embed("bonifico estero")
	if len(v) != 32 {
		t.Fatalf("embedding len = %d", len(v))
	}
	// At init, wrapping is a no-op.
	raw := base.Embed("bonifico estero")
	if vector.Cosine(v, raw) < 0.999 {
		t.Fatal("identity wrapping changed the embedding")
	}
}
