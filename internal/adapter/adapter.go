// Package adapter implements the embedding-adapter extension the paper
// lists as future work for the retrieval module (§11): instead of
// fine-tuning the embedding model itself — impossible with a hosted model —
// a small trainable transformation is applied to query embeddings so they
// land closer to the embeddings of their relevant documents.
//
// The adapter is the standard low-rank residual form W = I + A·B (rank r ≪
// dim), trained with SGD on a margin ranking loss over (query, positive
// chunk, negative chunk) triplets mined from the validation dataset: the
// adapted query must score higher against a relevant chunk than against a
// confusable irrelevant one. On the synthetic substrate the headroom comes
// from question-template words ("prassi", "passaggi", ...) whose vectors
// are noise directions the adapter learns to suppress.
package adapter

import (
	"errors"
	"math/rand"

	"uniask/internal/embedding"
	"uniask/internal/vector"
)

// Adapter is a low-rank residual linear map on query embeddings.
type Adapter struct {
	dim, rank int
	// a is dim×rank, b is rank×dim; Apply(q) = normalize(q + a·(b·q)).
	a []float32
	b []float32
}

// New creates an adapter initialized near zero (so Apply starts as the
// identity map) with the given rank.
func New(dim, rank int, seed int64) *Adapter {
	rng := rand.New(rand.NewSource(seed))
	ad := &Adapter{dim: dim, rank: rank, a: make([]float32, dim*rank), b: make([]float32, rank*dim)}
	// Small random init on b, zero init on a: the residual starts at zero
	// and grows only where the loss wants it.
	for i := range ad.b {
		ad.b[i] = float32(rng.NormFloat64()) * 0.01
	}
	return ad
}

// Dim returns the embedding dimensionality the adapter operates on.
func (ad *Adapter) Dim() int { return ad.dim }

// forward computes u = B·q (rank) and y = q + A·u (dim, unnormalized).
func (ad *Adapter) forward(q vector.Vector) (u, y vector.Vector) {
	u = make(vector.Vector, ad.rank)
	for r := 0; r < ad.rank; r++ {
		var s float32
		row := ad.b[r*ad.dim : (r+1)*ad.dim]
		for i := 0; i < ad.dim; i++ {
			s += row[i] * q[i]
		}
		u[r] = s
	}
	y = make(vector.Vector, ad.dim)
	copy(y, q)
	for i := 0; i < ad.dim; i++ {
		var s float32
		row := ad.a[i*ad.rank : (i+1)*ad.rank]
		for r := 0; r < ad.rank; r++ {
			s += row[r] * u[r]
		}
		y[i] += s
	}
	return u, y
}

// Apply maps a query embedding through the adapter (unit-normalized).
func (ad *Adapter) Apply(q vector.Vector) vector.Vector {
	_, y := ad.forward(q)
	return vector.Normalize(y)
}

// Triplet is one training example: a query embedding, the embedding of a
// relevant chunk and the embedding of a confusable irrelevant chunk.
type Triplet struct {
	Query, Positive, Negative vector.Vector
}

// TrainConfig controls SGD.
type TrainConfig struct {
	// Epochs over the triplet set (default 10).
	Epochs int
	// LearningRate (default 0.01). Larger rates overshoot: the hinge flips
	// between active and inactive and the residual oscillates.
	LearningRate float64
	// Margin of the hinge loss (default 0.5). The margin must exceed the
	// typical existing score gap or the hinge never activates.
	Margin float64
	// Seed shuffles the triplets per epoch.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Margin <= 0 {
		c.Margin = 0.5
	}
	return c
}

// ErrNoTriplets is returned when Train is called with no data.
var ErrNoTriplets = errors.New("adapter: no training triplets")

// Train fits the adapter with SGD on the margin ranking loss
// max(0, margin - y·p + y·n) where y = q + A·B·q and p, n are the
// unit-normalized positive/negative chunk embeddings. It returns the mean
// loss of the final epoch.
func (ad *Adapter) Train(triplets []Triplet, cfg TrainConfig) (float64, error) {
	if len(triplets) == 0 {
		return 0, ErrNoTriplets
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(triplets))
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LearningRate)
	margin := float32(cfg.Margin)

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			tr := triplets[idx]
			u, y := ad.forward(tr.Query)
			norm := vector.Norm(y)
			if norm == 0 {
				continue
			}
			inv := 1 / norm
			// Scores on the normalized output ŷ = y/‖y‖ so training matches
			// what Apply produces.
			var sp, sn float32
			for i := 0; i < ad.dim; i++ {
				sp += y[i] * inv * tr.Positive[i]
				sn += y[i] * inv * tr.Negative[i]
			}
			loss := margin - sp + sn
			if loss <= 0 {
				continue
			}
			total += float64(loss)
			// dL/dŷ = n - p; backprop through the normalization:
			// dL/dy = (g - (ŷ·g)·ŷ) / ‖y‖ with g = n - p.
			g := make(vector.Vector, ad.dim)
			var yg float32
			for i := 0; i < ad.dim; i++ {
				g[i] = tr.Negative[i] - tr.Positive[i]
				yg += y[i] * inv * g[i]
			}
			dy := make(vector.Vector, ad.dim)
			for i := 0; i < ad.dim; i++ {
				dy[i] = (g[i] - yg*y[i]*inv) * inv
			}
			// Backprop into A and B.
			for i := 0; i < ad.dim; i++ {
				row := ad.a[i*ad.rank : (i+1)*ad.rank]
				for r := 0; r < ad.rank; r++ {
					row[r] -= lr * dy[i] * u[r]
				}
			}
			for r := 0; r < ad.rank; r++ {
				var du float32
				for i := 0; i < ad.dim; i++ {
					du += ad.a[i*ad.rank+r] * dy[i]
				}
				row := ad.b[r*ad.dim : (r+1)*ad.dim]
				for j := 0; j < ad.dim; j++ {
					row[j] -= lr * du * tr.Query[j]
				}
			}
		}
		lastLoss = total / float64(len(triplets))
	}
	return lastLoss, nil
}

// Embedder wraps a base embedder, adapting query embeddings. Documents are
// embedded with the base model (the index is not re-built), which is the
// whole point of an adapter.
type Embedder struct {
	Base    embedding.Embedder
	Adapter *Adapter
}

// Embed implements embedding.Embedder.
func (e *Embedder) Embed(text string) vector.Vector {
	return e.Adapter.Apply(e.Base.Embed(text))
}

// Dim implements embedding.Embedder.
func (e *Embedder) Dim() int { return e.Base.Dim() }
