package chaos

// Streaming resilience acceptance. Conversational SSE streams must degrade
// the same way one-shot asks do: with 30% of LLM calls erroring and 10%
// hanging, every turn of a multi-turn session must stream to a terminal
// `done` event (mid-generation failures surface as a `fallback` event, never
// a dangling connection or a late 5xx). A second scenario pins tenant
// isolation: one tenant holding many open streams must not move another
// tenant's one-shot p99. Seeds rotate via CHAOS_SEED like the rest of the
// suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniask/internal/server"
	"uniask/internal/sse"
)

// streamDone mirrors the server's terminal `done` payload.
type streamDone struct {
	Answer        string   `json:"answer"`
	AnswerValid   bool     `json:"answerValid"`
	Degraded      bool     `json:"degraded"`
	DegradedParts []string `json:"degradedParts"`
	TraceID       string   `json:"traceId"`
	Turn          int      `json:"turn"`
	Error         string   `json:"error"`
}

// createStreamSession opens a conversational session, optionally scoped to a
// tenant, and returns its ID.
func createStreamSession(t *testing.T, base, token, tenantID string) (string, int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, base+"/api/sessions", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	if tenantID != "" {
		req.Header.Set(server.TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", resp.StatusCode
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("create session decode: %v %q", err, out.ID)
	}
	return out.ID, resp.StatusCode
}

// streamTurn drives one SSE turn and returns the HTTP status plus every
// parsed event. The body is read to EOF through the incremental parser so a
// dangling stream (no terminal event, connection held open) fails the test's
// deadline rather than passing silently.
func streamTurn(t testing.TB, base, token, tenantID, sid, question string) (int, []sse.Event) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"question": question})
	req, _ := http.NewRequest(http.MethodPost, base+"/api/sessions/"+sid+"/ask", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	if tenantID != "" {
		req.Header.Set(server.TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream turn: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var p sse.Parser
	var events []sse.Event
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			evs, perr := p.Feed(buf[:n])
			if perr != nil {
				t.Fatalf("sse parse: %v", perr)
			}
			events = append(events, evs...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	}
	return resp.StatusCode, events
}

func parseStreamDone(t testing.TB, events []sse.Event) streamDone {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("stream produced no events")
	}
	last := events[len(events)-1]
	if last.Name != "done" {
		t.Fatalf("terminal event = %q, want done (events: %v)", last.Name, eventNameList(events))
	}
	var d streamDone
	if err := json.Unmarshal([]byte(last.Data), &d); err != nil {
		t.Fatalf("done payload: %v (%q)", err, last.Data)
	}
	return d
}

func eventNameList(events []sse.Event) []string {
	names := make([]string, len(events))
	for i, ev := range events {
		names[i] = ev.Name
	}
	return names
}

func hasPart(parts []string, want string) bool {
	for _, p := range parts {
		if p == want {
			return true
		}
	}
	return false
}

// TestChaosStreamingAlwaysTerminates is the streaming acceptance bar: a
// multi-turn conversation over the 30% error / 10% hang LLM must stream
// every turn to a terminal done with a non-empty answer — 100% availability,
// degradation allowed, dangling streams and 5xx not.
func TestChaosStreamingAlwaysTerminates(t *testing.T) {
	h, err := NewHarness(context.Background(), Config{
		Seed:         chaosSeed(t) + 600,
		Queries:      12,
		LLMErrorRate: 0.30,
		LLMHangRate:  0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := server.New(h.Engine)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	token := loginChaos(t, srv.URL)

	sid, status := createStreamSession(t, srv.URL, token, "")
	if status != http.StatusCreated {
		t.Fatalf("create session: status %d", status)
	}

	answered, fallbacks, degradedTurns := 0, 0, 0
	for i, q := range h.Questions {
		status, events := streamTurn(t, srv.URL, token, "", sid, q)
		if status != http.StatusOK {
			t.Fatalf("turn %d: status %d, want 200 (streams must shed inside the stream, not at the door)", i, status)
		}
		done := parseStreamDone(t, events)
		if done.Error != "" {
			t.Fatalf("turn %d: done carries error %q — availability bar is 100%%", i, done.Error)
		}
		if done.Answer == "" {
			t.Fatalf("turn %d: empty answer", i)
		}
		if done.Turn != i {
			t.Fatalf("turn %d: done.turn = %d", i, done.Turn)
		}
		answered++
		if done.Degraded {
			degradedTurns++
		}
		sawFallback := false
		for j, ev := range events {
			if ev.Name == "fallback" {
				sawFallback = true
				if j != len(events)-2 {
					t.Fatalf("turn %d: fallback must immediately precede done (events: %v)", i, eventNameList(events))
				}
			}
		}
		if sawFallback {
			fallbacks++
			if !hasPart(done.DegradedParts, "generation") {
				t.Fatalf("turn %d: fallback event without generation in degradedParts %v", i, done.DegradedParts)
			}
		}
	}
	if answered != len(h.Questions) {
		t.Fatalf("answered %d/%d turns", answered, len(h.Questions))
	}

	// The transcript must hold every turn, in order.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/sessions/"+sid, nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Turns []struct {
			Question string `json:"question"`
		} `json:"turns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Turns) != len(h.Questions) {
		t.Fatalf("transcript holds %d turns, want %d", len(view.Turns), len(h.Questions))
	}
	for i, turn := range view.Turns {
		if turn.Question != h.Questions[i] {
			t.Fatalf("transcript turn %d = %q, want %q", i, turn.Question, h.Questions[i])
		}
	}
	t.Logf("seed %d: %d turns answered, %d degraded, %d mid-stream fallbacks",
		chaosSeed(t)+600, answered, degradedTurns, fallbacks)
}

// TestChaosStreamingMidStreamFallback turns the dial to 100% LLM errors: the
// stream begins emitting tokens, the LLM dies mid-generation, and the client
// must receive a `fallback` event (discard streamed tokens, use the
// extractive answer) followed by `done`. Turns after the first must also
// carry the rewrite-shed flag — the history rewrite can't run either, and
// the turn proceeds on the raw query rather than failing.
func TestChaosStreamingMidStreamFallback(t *testing.T) {
	h, err := NewHarness(context.Background(), Config{
		Seed:         chaosSeed(t) + 601,
		Queries:      6,
		LLMErrorRate: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := server.New(h.Engine)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	token := loginChaos(t, srv.URL)

	sid, _ := createStreamSession(t, srv.URL, token, "")
	fallbacks, tokensBeforeFallback := 0, 0
	for i, q := range h.Questions {
		status, events := streamTurn(t, srv.URL, token, "", sid, q)
		if status != http.StatusOK {
			t.Fatalf("turn %d: status %d", i, status)
		}
		done := parseStreamDone(t, events)
		if done.Error != "" {
			t.Fatalf("turn %d: done error %q", i, done.Error)
		}
		if done.Answer == "" {
			t.Fatalf("turn %d: no extractive answer with generation fully down", i)
		}
		if !hasPart(done.DegradedParts, "generation") {
			t.Fatalf("turn %d: generation missing from degradedParts %v under 100%% LLM errors", i, done.DegradedParts)
		}
		if i > 0 && !hasPart(done.DegradedParts, "rewrite") {
			t.Fatalf("turn %d: rewrite shed flag missing from degradedParts %v", i, done.DegradedParts)
		}
		tokens := 0
		for _, ev := range events {
			switch ev.Name {
			case "token":
				tokens++
			case "fallback":
				fallbacks++
				tokensBeforeFallback += tokens
			}
		}
		// Tokens may only appear on turns that then recover via fallback:
		// without a fallback event the client would assemble a truncated
		// answer from a stream that died mid-generation.
		if tokens > 0 {
			last := events[len(events)-1]
			prev := events[len(events)-2]
			if last.Name != "done" || prev.Name != "fallback" {
				t.Fatalf("turn %d: streamed %d tokens without a terminal fallback (events: %v)",
					i, tokens, eventNameList(events))
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no mid-stream fallback observed across the session — fault injection never hit an open stream")
	}
	if tokensBeforeFallback == 0 {
		t.Fatal("fallback never arrived after streamed tokens — mid-stream death path untested")
	}
	t.Logf("%d fallbacks, %d tokens streamed before mid-stream death", fallbacks, tokensBeforeFallback)
}

// TestChaosStreamingNoisyNeighbor pins stream isolation: banca-abusiva
// holding ~50 workers continuously opening SSE session streams must not move
// banca-buona's one-shot search p99 beyond the same pinned bound as the
// request flood — per-tenant admission caps open streams, so the abuser is
// shed with 429s at the door instead of occupying shared capacity.
func TestChaosStreamingNoisyNeighbor(t *testing.T) {
	seed := chaosSeed(t)
	hs, _ := newNoisyNeighborServer(t, seed)
	token := tenantToken(t, hs.URL)
	rng := rand.New(rand.NewSource(seed))

	queries := []string{"conto+corrente", "carta+di+credito", "bonifico+estero", "errore+bonifico", "apertura+conto"}
	questions := []string{"come apro un conto corrente", "limiti della carta di credito", "quanto costa un bonifico estero"}
	pick := func() string { return queries[rng.Intn(len(queries))] }

	const wellBehaved = 60

	// Phase 1 — solo baseline for the well-behaved tenant.
	solo := make([]time.Duration, 0, wellBehaved)
	for i := 0; i < wellBehaved; i++ {
		code, lat := searchOnce(t, hs.URL, token, "banca-buona", pick())
		if code != http.StatusOK {
			t.Fatalf("solo request %d: status %d", i, code)
		}
		solo = append(solo, lat)
	}
	soloP99 := p99Of(solo)

	// Phase 2 — 50 workers keep opening streams on banca-abusiva while
	// banca-buona runs its sequential one-shot pace. Admission caps the
	// abuser at 4 concurrent, so most attempts 429 — that shedding IS the
	// isolation mechanism under test.
	var (
		stop                  atomic.Bool
		streamOK, streamShed  atomic.Int64
		streamBad             atomic.Int64
		wg                    sync.WaitGroup
		noisy                 = make([]time.Duration, 0, wellBehaved)
		goodRejected, good5xx int
	)
	for w := 0; w < 50; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sid, status := createStreamSession(t, hs.URL, token, "banca-abusiva")
			if status != http.StatusCreated {
				// Session budget shed at create is acceptable for the
				// abuser as long as it is a clean 429.
				if status == http.StatusTooManyRequests {
					streamShed.Add(1)
					return
				}
				streamBad.Add(1)
				return
			}
			r := rand.New(rand.NewSource(seed + 1000 + int64(w)))
			for !stop.Load() {
				q := questions[r.Intn(len(questions))]
				status, events := streamTurn(t, hs.URL, token, "banca-abusiva", sid, q)
				switch {
				case status == http.StatusOK:
					if len(events) == 0 || events[len(events)-1].Name != "done" {
						streamBad.Add(1)
					} else {
						streamOK.Add(1)
					}
				case status == http.StatusTooManyRequests:
					streamShed.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					streamBad.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < wellBehaved; i++ {
		code, lat := searchOnce(t, hs.URL, token, "banca-buona", pick())
		switch {
		case code == http.StatusOK:
			noisy = append(noisy, lat)
		case code >= 500:
			good5xx++
		default:
			goodRejected++
		}
	}
	stop.Store(true)
	wg.Wait()

	if goodRejected != 0 || good5xx != 0 {
		t.Fatalf("well-behaved tenant saw %d rejections and %d 5xx under the stream flood, want 0/0",
			goodRejected, good5xx)
	}
	if streamBad.Load() != 0 {
		t.Fatalf("abusive streams hit %d non-200/429 outcomes or dangled without done", streamBad.Load())
	}
	if streamShed.Load() == 0 {
		t.Fatalf("abusive tenant's streams were never shed (%d ok) — admission is not capping open streams", streamOK.Load())
	}
	noisyP99 := p99Of(noisy)
	if bound := noisyNeighborBound(soloP99); noisyP99 > bound {
		t.Fatalf("well-behaved p99 moved from %v to %v under 50 stream workers, beyond the pinned bound %v",
			soloP99, noisyP99, bound)
	}
	t.Logf("seed %d: solo p99 %v, noisy p99 %v; abuser streams %d ok / %d shed",
		seed, soloP99, noisyP99, streamOK.Load(), streamShed.Load())
}
