package chaos

// The resilience acceptance suite. The headline bar: with 30% of LLM calls
// erroring and 10% hanging, every query must still be answered (degraded
// answers allowed), the circuit breaker must provably cycle
// closed→open→half-open→closed, and the HTTP surface must emit no 5xx
// besides deliberate breaker-open/deadline 503s. Seeds rotate via the
// CHAOS_SEED environment variable (see `make chaos`).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/faulty"
	"uniask/internal/llm"
	"uniask/internal/resilience"
	"uniask/internal/server"
	"uniask/internal/vclock"
)

// chaosSeed returns the suite seed: CHAOS_SEED when set (make chaos rotates
// it), else a fixed default so plain `go test` is deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer: %v", v, err)
		}
		return n
	}
	return 20250805
}

func TestChaosAvailabilityUnderLLMFaults(t *testing.T) {
	// The acceptance scenario: 30% LLM errors + 10% hangs.
	h, err := NewHarness(context.Background(), Config{
		Seed:         chaosSeed(t),
		Queries:      60,
		LLMErrorRate: 0.30,
		LLMHangRate:  0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := h.RunWorkload(context.Background(), 5*time.Second)
	if rep.Availability() != 1.0 {
		t.Fatalf("availability = %.3f (%d/%d answered), failures: %v",
			rep.Availability(), rep.Answered, rep.Queries, rep.FailureSamples)
	}
	if counts := h.LLMFaults.Counts(); counts[faulty.Error] == 0 {
		t.Fatal("fault schedule injected no errors — the test proved nothing")
	}
	t.Logf("chaos(llm 30%%err/10%%hang): %d queries, %d degraded, parts=%v, faults=%v, transitions=%v",
		rep.Queries, rep.Degraded, rep.ByPart, h.LLMFaults.Counts(), h.Transitions.All())
}

func TestChaosAvailabilityUnderEmbeddingFaults(t *testing.T) {
	h, err := NewHarness(context.Background(), Config{
		Seed:               chaosSeed(t) + 100,
		Queries:            40,
		EmbedErrorRate:     0.35,
		EmbedMalformedRate: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := h.RunWorkload(context.Background(), 5*time.Second)
	if rep.Availability() != 1.0 {
		t.Fatalf("availability = %.3f, failures: %v", rep.Availability(), rep.FailureSamples)
	}
	t.Logf("chaos(embed 35%%err/15%%malformed): %d degraded, parts=%v", rep.Degraded, rep.ByPart)
}

func TestChaosEverythingBroken(t *testing.T) {
	// Both dependencies fully down: every answer must still arrive,
	// degraded to BM25-only retrieval plus the extractive fallback.
	h, err := NewHarness(context.Background(), Config{
		Seed:           chaosSeed(t) + 200,
		Queries:        20,
		LLMErrorRate:   1.0,
		EmbedErrorRate: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := h.RunWorkload(context.Background(), 5*time.Second)
	if rep.Availability() != 1.0 {
		t.Fatalf("availability = %.3f, failures: %v", rep.Availability(), rep.FailureSamples)
	}
	if rep.Degraded != rep.Queries {
		t.Fatalf("with both dependencies down every answer must be degraded: %d/%d", rep.Degraded, rep.Queries)
	}
	if rep.ByPart["generation"] == 0 || rep.ByPart["vector"] == 0 {
		t.Fatalf("expected generation and vector degradation, got %v", rep.ByPart)
	}
}

func TestChaosBreakerCycles(t *testing.T) {
	// Scripted faults + virtual clock: enough consecutive failures to open
	// the LLM breaker, then recovery; the breaker must walk
	// closed→open→half-open→closed, observed via the transition log.
	clk := vclock.NewVirtual(time.Unix(1700000000, 0))
	res := DefaultResilience()
	res.LLMPolicy = resilience.Policy{MaxAttempts: -1} // no retries: one fault = one failure
	res.LLMBreaker = resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Clock: clk}
	h, err := NewHarness(context.Background(), Config{
		Seed:       chaosSeed(t) + 300,
		Queries:    8,
		Resilience: &res,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generation is the only LLM consumer in the default pipeline; script
	// three failures to open the breaker, everything after succeeds.
	*h.LLMFaults = *faulty.Script(faulty.Error, faulty.Error, faulty.Error)

	ask := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := h.Engine.Ask(ctx, h.Questions[0]); err != nil {
			t.Fatalf("Ask failed during breaker cycle: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		ask()
	}
	if st := h.Engine.LLMBreaker.State(); st != resilience.Open {
		t.Fatalf("after 3 failures: breaker = %v, want Open", st)
	}
	// While open, asks are shed fast and answered degraded.
	ask()
	// Cooldown elapses on the virtual clock; the next LLM call is the
	// half-open probe, which succeeds and closes the circuit.
	clk.Advance(2 * time.Minute)
	ask()
	if st := h.Engine.LLMBreaker.State(); st != resilience.Closed {
		t.Fatalf("after successful probe: breaker = %v, want Closed", st)
	}
	got := h.Transitions.All()
	want := []string{"llm:closed->open", "llm:open->half-open", "llm:half-open->closed"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestChaosServerNoUnexplained5xx(t *testing.T) {
	// Drive the acceptance workload through the real HTTP surface with
	// concurrent clients: every response must be 200, or a deliberate 503
	// (breaker open / deadline). 500s are a resilience bug.
	h, err := NewHarness(context.Background(), Config{
		Seed:         chaosSeed(t) + 400,
		Queries:      40,
		LLMErrorRate: 0.30,
		LLMHangRate:  0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := server.New(h.Engine)
	api.RequestTimeout = 5 * time.Second
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	token := loginChaos(t, srv.URL)
	type outcome struct {
		status   int
		degraded bool
	}
	outcomes := make([]outcome, len(h.Questions))
	var wg sync.WaitGroup
	workers := 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(h.Questions); i += workers {
				body, _ := json.Marshal(map[string]string{"question": h.Questions[i]})
				req, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/ask", bytes.NewReader(body))
				req.Header.Set("Authorization", "Bearer "+token)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				var out struct {
					Degraded bool `json:"degraded"`
				}
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				outcomes[i] = outcome{status: resp.StatusCode, degraded: out.Degraded}
			}
		}(w)
	}
	wg.Wait()

	ok, deliberate503, degraded := 0, 0, 0
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok++
			if o.degraded {
				degraded++
			}
		case http.StatusServiceUnavailable:
			deliberate503++
		default:
			t.Errorf("question %d: unexplained status %d", i, o.status)
		}
	}
	if ok == 0 {
		t.Fatal("no successful answers at all")
	}
	t.Logf("server chaos: %d ok (%d degraded), %d deliberate 503", ok, degraded, deliberate503)
}

func loginChaos(t *testing.T, base string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": "chaos"})
	resp, err := http.Post(base+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Token == "" {
		t.Fatalf("login failed: %v %q", err, out.Token)
	}
	return out.Token
}

// TestChaosMalformedLLMOutput: corrupted completions must not crash parsing
// — the citation parser and guardrails handle garbage; the worst case is an
// apology answer, never an error.
func TestChaosMalformedLLMOutput(t *testing.T) {
	h, err := NewHarness(context.Background(), Config{
		Seed:             chaosSeed(t) + 500,
		Queries:          20,
		LLMMalformedRate: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := h.RunWorkload(context.Background(), 5*time.Second)
	if rep.Availability() != 1.0 {
		t.Fatalf("availability = %.3f, failures: %v", rep.Availability(), rep.FailureSamples)
	}
}

// Guard against schedule aliasing: the harness must give LLM and embedder
// distinct schedules so their fault streams are independent.
func TestHarnessSchedulesIndependent(t *testing.T) {
	h, err := NewHarness(context.Background(), Config{Seed: 1, Queries: 1, LLMErrorRate: 0.5, EmbedErrorRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if h.LLMFaults == h.EmbedFaults {
		t.Fatal("LLM and embedder share one schedule")
	}
	var _ llm.Client = (*faulty.Client)(nil) // the injector must stay a drop-in Client
	var _ core.ResilienceConfig = DefaultResilience()
}
