package chaos

// Network chaos for the remote-shard topology. The availability bar mirrors
// the LLM-fault suite: killing one replica in the middle of a query storm
// must not cost a single failed or degraded query — the hedged scatter-gather
// fails over to the surviving replica of every shard and the killed
// endpoint's circuit breaker opens. Degradation (partial results, never an
// error) is only permitted once EVERY replica of a shard is down.
//
// Replica placement here is explicit — shard i lives on servers i and
// (i+1) mod 3 — rather than consistent-hash derived: ephemeral loopback
// ports make ring placement vary run to run, and a chaos assertion about
// "all replicas of shard 0" needs to know exactly which processes those are.
// The ring itself is covered by the placement tests in internal/remote.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/queue"
	"uniask/internal/remote"
	"uniask/internal/rerank"
	"uniask/internal/resilience"
	"uniask/internal/search"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// remoteCluster is a loopback shard-server fleet with explicit replica
// placement: 3 servers, 3 logical shards, replication factor 2, shard i on
// servers i and (i+1)%3. Killing server 0 leaves every shard one live
// replica; killing servers 0 AND 1 blacks out exactly shard 0.
type remoteCluster struct {
	servers  []*remote.Server
	breakers []*resilience.Breaker // one per endpoint, shared by its clients
	facade   *shard.Sharded
}

const clusterServers = 3

func startRemoteCluster(t *testing.T) *remoteCluster {
	t.Helper()
	cfg := index.Config{
		Schema:      indexer.Schema(),
		VectorIndex: func(string) vector.Index { return vector.NewExhaustive() },
	}
	c := &remoteCluster{}
	addrs := make([]string, clusterServers)
	for i := 0; i < clusterServers; i++ {
		srv := remote.NewServer(remote.ServerConfig{Index: cfg})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		c.servers = append(c.servers, srv)
		addrs[i] = srv.Addr()
		c.breakers = append(c.breakers, resilience.NewBreaker(resilience.BreakerConfig{
			Name: "remote:" + srv.Addr(),
		}))
	}
	backends := make([]shard.Backend, clusterServers)
	for i := range backends {
		var replicas []*remote.Client
		for j := 0; j < 2; j++ {
			ep := (i + j) % clusterServers
			replicas = append(replicas, remote.NewClient(remote.ClientConfig{
				Addr:    addrs[ep],
				Shard:   i,
				Breaker: c.breakers[ep],
			}))
		}
		backends[i] = remote.NewGroup(replicas, 0)
	}
	c.facade = shard.NewWithBackends(shard.Config{Shards: clusterServers, Index: cfg}, backends)
	t.Cleanup(func() { c.facade.Close() })
	return c
}

// loadRemoteCluster feeds a generated corpus through the real ingestion
// pipeline into the cluster's facade and returns the retrieval stack plus a
// query sample.
func loadRemoteCluster(t *testing.T, c *remoteCluster, seed int64) (*search.Searcher, []string) {
	t.Helper()
	corpus := kb.Generate(kb.GenConfig{Docs: 48, Seed: seed})
	pages := make(ingest.StaticSource, len(corpus.Docs))
	for i, d := range corpus.Docs {
		pages[i] = ingest.Page{ID: d.ID, HTML: d.HTML}
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	var docs []ingest.Extracted
	for {
		doc, ok := q.TryDequeue()
		if !ok {
			break
		}
		docs = append(docs, doc)
	}
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())
	in := indexer.New(c.facade, emb, client, indexer.Config{})
	if _, err := in.IndexBatch(context.Background(), docs, 4); err != nil {
		t.Fatal(err)
	}
	c.facade.Publish()
	c.facade.WaitCompaction()
	var queries []string
	for _, q := range corpus.HumanDataset(6, seed+100).Queries {
		queries = append(queries, q.Text)
	}
	for _, q := range corpus.KeywordDataset(6, seed+200).Queries {
		queries = append(queries, q.Text)
	}
	// No query cache: a cache would serve stormed queries from memory and
	// the availability numbers would stop measuring the wire at all.
	return &search.Searcher{
		Index:    c.facade,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      client,
		Workers:  4,
	}, queries
}

// TestChaosRemoteReplicaKillMidStorm kills one shard server in the middle of
// a concurrent query storm. Every shard keeps one live replica, so the bar
// is absolute: zero failed queries, zero degraded queries — the hedged
// scatter-gather must absorb the crash invisibly — and the killed endpoint's
// circuit breaker must be open by the end of the storm.
func TestChaosRemoteReplicaKillMidStorm(t *testing.T) {
	c := startRemoteCluster(t)
	searcher, queries := loadRemoteCluster(t, c, chaosSeed(t))

	const (
		workers          = 6
		queriesPerWorker = 30
		killAfter        = 20 // total queries completed before the kill
	)
	var (
		done     atomic.Int64
		failures atomic.Int64
		degraded atomic.Int64
		killOnce sync.Once
		firstErr atomic.Value
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				q := queries[(w*queriesPerWorker+i)%len(queries)]
				_, deg, err := searcher.SearchDegraded(context.Background(), q, search.Options{})
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d query %q: %w", w, q, err))
				}
				if deg.ShardsDown > 0 {
					degraded.Add(1)
				}
				if done.Add(1) == killAfter {
					killOnce.Do(func() { c.servers[0].Close() })
				}
			}
		}(w)
	}
	wg.Wait()
	killOnce.Do(func() { c.servers[0].Close() }) // storm shorter than killAfter would skip the kill

	if n := failures.Load(); n > 0 {
		t.Errorf("replica kill cost %d/%d queries; first: %v", n, done.Load(), firstErr.Load())
	}
	if n := degraded.Load(); n > 0 {
		t.Errorf("replica kill degraded %d/%d queries; hedged failover should mask a single-replica outage", n, done.Load())
	}
	// The dead endpoint must have tripped its breaker; the survivors must not.
	// The storm's failover traffic guarantees enough failures to trip it.
	if st := c.breakers[0].State(); st != resilience.Open {
		t.Errorf("killed endpoint's breaker is %v, want open", st)
	}
	for i := 1; i < clusterServers; i++ {
		if st := c.breakers[i].State(); st != resilience.Closed {
			t.Errorf("surviving endpoint %d's breaker is %v, want closed", i, st)
		}
	}
}

// TestChaosRemoteShardBlackout kills BOTH replicas of shard 0 (servers 0 and
// 1). This is the one situation where degradation is allowed — and it must
// be degradation, not failure: every query still returns the surviving
// shards' results with Degradation.ShardsDown reporting exactly the one
// blacked-out shard.
func TestChaosRemoteShardBlackout(t *testing.T) {
	c := startRemoteCluster(t)
	searcher, queries := loadRemoteCluster(t, c, chaosSeed(t)+1)

	// Sanity before the blackout: healthy cluster, complete results.
	res, deg, err := searcher.SearchDegraded(context.Background(), queries[0], search.Options{})
	if err != nil || deg.Degraded() {
		t.Fatalf("healthy cluster: err=%v degradation=%v", err, deg.Parts())
	}
	if len(res) == 0 {
		t.Fatal("healthy cluster returned no results")
	}

	c.servers[0].Close()
	c.servers[1].Close()

	sawResults := false
	for _, q := range queries {
		res, deg, err := searcher.SearchDegraded(context.Background(), q, search.Options{})
		if err != nil {
			t.Fatalf("blackout of shard 0 must degrade, not fail: query %q: %v", q, err)
		}
		if deg.ShardsDown != 1 {
			t.Errorf("query %q: ShardsDown = %d, want 1 (shards 1 and 2 keep a live replica on server 2)", q, deg.ShardsDown)
		}
		if !deg.Degraded() {
			t.Errorf("query %q: blackout not reported as a degradation", q)
		}
		if len(res) > 0 {
			sawResults = true
		}
	}
	if !sawResults {
		t.Error("every blackout query came back empty; surviving shards contributed nothing")
	}
}
