package chaos

// Noisy-neighbor acceptance: one abusive tenant flooding at ~50× its fair
// rate must not move a well-behaved tenant's p99 beyond a pinned bound, must
// be shed with 429s (never 5xx), and must not starve its own admission —
// some of its traffic still lands. Seeds rotate via CHAOS_SEED like the
// rest of the suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/kb"
	"uniask/internal/search"
	"uniask/internal/server"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// noisyNeighborBound is the pinned p99 bound: under the flood, the
// well-behaved tenant's p99 may be at most 4× its solo p99 plus 100ms of
// absolute slack (scheduler noise on loaded CI machines).
func noisyNeighborBound(solo time.Duration) time.Duration {
	return 4*solo + 100*time.Millisecond
}

// newNoisyNeighborServer builds the two-tenant topology: banca-buona
// (interactive, roomy rate, capped at 8 concurrent) and banca-abusiva
// (best-effort, 10 q/s fair rate, capped at 4 concurrent). Global capacity
// 16 > 4 means the abuser can never occupy the slots banca-buona needs.
func newNoisyNeighborServer(t *testing.T, seed int64) (*httptest.Server, *server.Server) {
	t.Helper()
	f, err := tenant.ParseFile([]byte(`{
		"defaults": {"cacheShare": 64},
		"tenants": {
			"banca-buona":   {"rate": 2000, "burst": 2000, "maxConcurrent": 8},
			"banca-abusiva": {"class": "best-effort", "rate": 10, "burst": 10, "maxConcurrent": 4}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ov := tenant.NewOverrides(f)
	tracer := trace.New(trace.Config{Seed: seed})
	pool := search.NewCachePool(0, 64)

	var srv *server.Server
	factory := func(id string, lim tenant.Limits) (*core.Engine, error) {
		corpus := kb.Generate(kb.GenConfig{Docs: 60, Seed: seed + int64(len(id))})
		eng, err := tenant.StandardFactory(core.Config{Lexicon: corpus.Lexicon()}, pool, tracer, func(_ string, eng *core.Engine) error {
			srv.ObserveEngine(eng)
			return nil
		})(id, lim)
		if err != nil {
			return nil, err
		}
		if err := eng.IndexCorpus(context.Background(), corpus); err != nil {
			return nil, err
		}
		return eng, nil
	}
	reg := tenant.NewRegistry(ov, factory)
	ctrl := tenant.NewController(tenant.AdmissionConfig{Capacity: 16}, ov)
	srv = server.NewMultiTenant(reg, ctrl, tracer, pool)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, srv
}

func tenantToken(t *testing.T, base string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": "chaos"})
	resp, err := http.Post(base+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Token
}

// searchOnce runs one tenant-scoped search and returns the HTTP status and
// its latency.
func searchOnce(t *testing.T, base, token, tenantID, q string) (int, time.Duration) {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/api/search?q="+q, nil)
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set(server.TenantHeader, tenantID)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	lat := time.Since(start)
	if err != nil {
		t.Fatalf("search transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
	return resp.StatusCode, lat
}

func p99Of(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1))]
}

func TestChaosNoisyNeighbor(t *testing.T) {
	seed := chaosSeed(t)
	hs, _ := newNoisyNeighborServer(t, seed)
	token := tenantToken(t, hs.URL)
	rng := rand.New(rand.NewSource(seed))

	queries := []string{"conto+corrente", "carta+di+credito", "bonifico+estero", "errore+bonifico", "apertura+conto"}
	pick := func() string { return queries[rng.Intn(len(queries))] }

	const wellBehaved = 60

	// Phase 1 — solo baseline: banca-buona alone, sequential.
	solo := make([]time.Duration, 0, wellBehaved)
	for i := 0; i < wellBehaved; i++ {
		code, lat := searchOnce(t, hs.URL, token, "banca-buona", pick())
		if code != http.StatusOK {
			t.Fatalf("solo request %d: status %d", i, code)
		}
		solo = append(solo, lat)
	}
	soloP99 := p99Of(solo)

	// Phase 2 — flood: banca-abusiva fires 300 requests (≫ 50× what its
	// 10 q/s bucket allows in the test's sub-second window) from 8 workers
	// while banca-buona keeps its sequential pace.
	const floodTotal = 300
	var (
		mu                      sync.Mutex
		abuserOK, abuser429     int
		abuser5xx, abuserOther  int
		noisy                   = make([]time.Duration, 0, wellBehaved)
		goodRejected, good5xx   int
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < floodTotal/8; i++ {
				q := queries[r.Intn(len(queries))]
				code, _ := searchOnce(t, hs.URL, token, "banca-abusiva", q)
				mu.Lock()
				switch {
				case code == http.StatusOK:
					abuserOK++
				case code == http.StatusTooManyRequests:
					abuser429++
				case code >= 500:
					abuser5xx++
				default:
					abuserOther++
				}
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < wellBehaved; i++ {
		code, lat := searchOnce(t, hs.URL, token, "banca-buona", pick())
		switch {
		case code == http.StatusOK:
			noisy = append(noisy, lat)
		case code >= 500:
			good5xx++
		default:
			goodRejected++
		}
	}
	wg.Wait()

	// The well-behaved tenant: zero rejections, zero 5xx.
	if goodRejected != 0 || good5xx != 0 {
		t.Fatalf("well-behaved tenant saw %d rejections and %d 5xx under the flood, want 0/0", goodRejected, good5xx)
	}
	// The abuser: shed with 429s, never 5xx, but not starved either.
	if abuser5xx != 0 || abuserOther != 0 {
		t.Fatalf("abusive tenant saw %d 5xx and %d unexpected statuses; shedding must be 429-only", abuser5xx, abuserOther)
	}
	if abuser429 == 0 {
		t.Fatalf("abusive tenant was never shed (%d ok) — admission is not limiting", abuserOK)
	}
	if abuserOK == 0 {
		t.Fatal("abusive tenant was fully starved; its fair share must still be admitted")
	}
	// The pinned p99 bound.
	noisyP99 := p99Of(noisy)
	if bound := noisyNeighborBound(soloP99); noisyP99 > bound {
		t.Fatalf("well-behaved p99 moved from %v to %v under the flood, beyond the pinned bound %v",
			soloP99, noisyP99, bound)
	}
	t.Logf("seed %d: solo p99 %v, noisy p99 %v; abuser %d ok / %d shed", seed, soloP99, noisyP99, abuserOK, abuser429)
}
