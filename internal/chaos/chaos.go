// Package chaos is the fault-injection proving ground for the resilience
// layer: it assembles a full UniAsk engine whose LLM and embedding
// dependencies are wrapped in seeded fault injectors (internal/faulty),
// drives realistic query workloads through the engine and the HTTP server,
// and reports availability, degradation and circuit-breaker behavior.
//
// The package is a library so `make chaos` and external experiments can
// reuse the harness; the accompanying test suite encodes the resilience
// acceptance bar — 30% LLM errors plus 10% hangs must not cost a single
// failed query (degraded answers are allowed, deliberate breaker-open 503s
// are allowed, unexplained 5xx are not).
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uniask/internal/core"
	"uniask/internal/embedding"
	"uniask/internal/faulty"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/resilience"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives corpus generation, query sampling and fault schedules.
	Seed int64
	// Docs sizes the generated knowledge base (default 40).
	Docs int
	// Queries is how many questions to drive (default 50).
	Queries int

	// LLMErrorRate, LLMHangRate, LLMSlowRate, LLMMalformedRate configure
	// the LLM fault schedule.
	LLMErrorRate     float64
	LLMHangRate      float64
	LLMSlowRate      float64
	LLMMalformedRate float64
	// EmbedErrorRate etc. configure the embedding fault schedule.
	EmbedErrorRate     float64
	EmbedHangRate      float64
	EmbedMalformedRate float64

	// Resilience overrides the engine's resilience configuration. Zero
	// value gets DefaultResilience(): tight budgets suited to tests.
	Resilience *core.ResilienceConfig
}

func (c Config) withDefaults() Config {
	if c.Docs <= 0 {
		c.Docs = 40
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	return c
}

// DefaultResilience is the chaos-suite resilience configuration: fast
// retries, attempt timeouts that bound hangs, and tight breakers so circuit
// transitions happen within a short test run.
func DefaultResilience() core.ResilienceConfig {
	return core.ResilienceConfig{
		LLMPolicy: resilience.Policy{
			MaxAttempts:    3,
			BaseDelay:      50 * time.Microsecond,
			MaxDelay:       time.Millisecond,
			AttemptTimeout: 30 * time.Millisecond,
		},
		LLMBreaker: resilience.BreakerConfig{
			FailureThreshold: 5,
			Cooldown:         20 * time.Millisecond,
		},
		EmbedPolicy: resilience.Policy{
			MaxAttempts:    3,
			BaseDelay:      50 * time.Microsecond,
			MaxDelay:       time.Millisecond,
			AttemptTimeout: 30 * time.Millisecond,
		},
		EmbedBreaker: resilience.BreakerConfig{
			FailureThreshold: 5,
			Cooldown:         20 * time.Millisecond,
		},
	}
}

// Harness is one assembled chaos environment.
type Harness struct {
	Engine    *core.Engine
	Questions []string
	// LLMFaults and EmbedFaults are the injected schedules (inspect Counts
	// after a run).
	LLMFaults   *faulty.Schedule
	EmbedFaults *faulty.Schedule
	// Transitions records breaker transitions as "name:from->to" strings.
	Transitions *TransitionLog
}

// Report aggregates one workload run.
type Report struct {
	// Queries is how many questions were asked.
	Queries int
	// Answered counts queries that returned a response (degraded or not).
	Answered int
	// Degraded counts answered queries flagged degraded.
	Degraded int
	// Failed counts queries that returned an error.
	Failed int
	// ByPart breaks degradations down by shed part.
	ByPart map[string]int
	// FailureSamples holds up to 5 of the failure messages for diagnosis.
	FailureSamples []string
}

// Availability is the fraction of queries answered, degraded or not.
func (r Report) Availability() float64 {
	if r.Queries == 0 {
		return 1
	}
	return float64(r.Answered) / float64(r.Queries)
}

// NewHarness builds the chaos environment: generated corpus, engine with
// fault-injected LLM and embedder, deterministic question sample.
func NewHarness(ctx context.Context, cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	h := &Harness{
		LLMFaults:   faulty.NewSchedule(cfg.Seed, cfg.LLMErrorRate, cfg.LLMSlowRate, cfg.LLMHangRate, cfg.LLMMalformedRate),
		EmbedFaults: faulty.NewSchedule(cfg.Seed+1, cfg.EmbedErrorRate, 0, cfg.EmbedHangRate, cfg.EmbedMalformedRate),
		Transitions: &TransitionLog{},
	}
	corpus := kb.Generate(kb.GenConfig{Docs: cfg.Docs, Seed: cfg.Seed})
	res := DefaultResilience()
	if cfg.Resilience != nil {
		res = *cfg.Resilience
	}
	engine, err := core.BuildFromCorpus(ctx, corpus, core.Config{
		Resilience: res,
		LLMMiddleware: func(inner llm.Client) llm.Client {
			return &faulty.Client{Inner: inner, Sched: h.LLMFaults}
		},
		EmbedderMiddleware: func(inner embedding.CtxEmbedder) embedding.CtxEmbedder {
			return &faulty.Embedder{Inner: inner, Sched: h.EmbedFaults}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build engine: %w", err)
	}
	engine.SetBreakerNotify(h.Transitions.Record)
	h.Engine = engine

	ds := corpus.HumanDataset(cfg.Queries, cfg.Seed+2)
	for _, q := range ds.Queries {
		h.Questions = append(h.Questions, q.Text)
	}
	// HumanDataset may return fewer questions than asked on tiny corpora;
	// cycle to fill the workload.
	if n := len(h.Questions); n > 0 {
		for i := 0; len(h.Questions) < cfg.Queries; i++ {
			h.Questions = append(h.Questions, h.Questions[i%n])
		}
	}
	if len(h.Questions) > cfg.Queries {
		h.Questions = h.Questions[:cfg.Queries]
	}
	return h, nil
}

// TransitionLog is a concurrency-safe record of breaker state changes.
type TransitionLog struct {
	mu      sync.Mutex
	entries []string
}

// Record appends one transition (wired to core.Engine.SetBreakerNotify).
func (l *TransitionLog) Record(name, from, to string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, fmt.Sprintf("%s:%s->%s", name, from, to))
}

// All returns a copy of the recorded transitions in order.
func (l *TransitionLog) All() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.entries))
	copy(out, l.entries)
	return out
}

// RunWorkload asks every harness question through Engine.Ask, each under
// its own deadline, and aggregates the outcomes.
func (h *Harness) RunWorkload(ctx context.Context, perQueryTimeout time.Duration) Report {
	rep := Report{ByPart: map[string]int{}}
	for _, q := range h.Questions {
		rep.Queries++
		qctx, cancel := context.WithTimeout(ctx, perQueryTimeout)
		resp, err := h.Engine.Ask(qctx, q)
		cancel()
		if err != nil {
			rep.Failed++
			if len(rep.FailureSamples) < 5 {
				rep.FailureSamples = append(rep.FailureSamples, fmt.Sprintf("%q: %v", q, err))
			}
			continue
		}
		rep.Answered++
		if resp.Degraded {
			rep.Degraded++
			for _, p := range resp.DegradedParts {
				rep.ByPart[p]++
			}
		}
	}
	return rep
}
