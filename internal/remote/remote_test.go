package remote

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/vector"
)

// testConfig is the shared store configuration of the wire tests: the real
// production schema with the exact vector backend, so client-vs-local
// comparisons are deterministic.
func testConfig() index.Config {
	return index.Config{
		Schema:      indexer.Schema(),
		VectorIndex: func(string) vector.Index { return vector.NewExhaustive() },
	}
}

// testDoc builds a small deterministic document.
func testDoc(i int) index.Document {
	title := fmt.Sprintf("Documento operativo %d", i)
	content := fmt.Sprintf("Istruzioni operative %d per la gestione del conto corrente e delle carte.", i)
	vec := make(vector.Vector, 8)
	for d := range vec {
		vec[d] = float32((i*7+d*3)%13) / 13
	}
	return index.Document{
		ID:       fmt.Sprintf("kb%05d#0", i),
		ParentID: fmt.Sprintf("kb%05d", i),
		Fields:   map[string]string{"title": title, "content": content},
		Vectors:  map[string]vector.Vector{"titleVector": vec, "contentVector": vec},
	}
}

// startServer boots a loopback shard server and returns it with its address.
func startServer(t testing.TB, cfg ServerConfig) *Server {
	t.Helper()
	srv := NewServer(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestClientMatchesLocal drives the same writes and queries through a
// remote client and a local segmented store and requires byte-identical
// results: the wire layer must be a transparent transport, adding no
// behavior of its own.
func TestClientMatchesLocal(t *testing.T) {
	cfg := testConfig()
	seg := index.SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: 2}
	srv := startServer(t, ServerConfig{Index: cfg, Segment: seg})
	c := NewClient(ClientConfig{Addr: srv.Addr(), Shard: 3})
	defer c.Close()
	local := index.NewSegmented(cfg, seg)

	ctx := context.Background()
	var docs []index.Document
	for i := 0; i < 40; i++ {
		docs = append(docs, testDoc(i))
	}
	if err := c.AddBulk(docs); err != nil {
		t.Fatal(err)
	}
	if err := local.AddBulk(docs); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(testDoc(40)); err != nil {
		t.Fatal(err)
	}
	if err := local.Add(testDoc(40)); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Delete("kb00007#0"), local.Delete("kb00007#0"); got != want {
		t.Fatalf("Delete: remote %v local %v", got, want)
	}
	if got, want := c.DeleteParent("kb00011"), local.DeleteParent("kb00011"); got != want {
		t.Fatalf("DeleteParent: remote %v local %v", got, want)
	}
	c.Publish()
	local.Publish()
	c.WaitCompaction()
	local.WaitCompaction()

	// Staleness signals and gauges agree.
	if got, want := c.Epoch(), local.Epoch(); got != want {
		t.Errorf("Epoch: remote %d local %d", got, want)
	}
	if got, want := c.StatsKey(), local.StatsKey(); got != want {
		t.Errorf("StatsKey: remote %d local %d", got, want)
	}
	if got, want := c.Len(), local.Len(); got != want {
		t.Errorf("Len: remote %d local %d", got, want)
	}
	if got, want := c.LiveLen(), local.LiveLen(); got != want {
		t.Errorf("LiveLen: remote %d local %d", got, want)
	}
	if got, want := c.Tombstones(), local.Tombstones(); got != want {
		t.Errorf("Tombstones: remote %d local %d", got, want)
	}

	// Full-text, global-stats and vector paths are byte-identical.
	for _, q := range []string{"istruzioni conto", "carte", "gestione operativa", ""} {
		rh, err := c.SearchText(ctx, q, 10, index.TextOptions{})
		if err != nil {
			t.Fatalf("SearchText %q: %v", q, err)
		}
		lh := local.SearchText(q, 10, index.TextOptions{})
		if got, want := fmt.Sprintf("%#v", rh), fmt.Sprintf("%#v", lh); got != want {
			t.Errorf("SearchText %q: remote %s local %s", q, got, want)
		}

		stats, err := c.CollectStats(ctx, nil, nil)
		if err != nil {
			t.Fatalf("CollectStats: %v", err)
		}
		lstats := local.CollectStats(nil, nil)
		rg, err := c.SearchTextGlobal(ctx, q, 10, index.TextOptions{}, &stats)
		if err != nil {
			t.Fatalf("SearchTextGlobal %q: %v", q, err)
		}
		lg := local.SearchTextGlobal(q, 10, index.TextOptions{}, &lstats)
		if got, want := fmt.Sprintf("%#v", rg), fmt.Sprintf("%#v", lg); got != want {
			t.Errorf("SearchTextGlobal %q: remote %s local %s", q, got, want)
		}
	}
	qv := testDoc(3).Vectors["titleVector"]
	rv, err := c.SearchVectorUnit(ctx, "titleVector", qv, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	lv := local.SearchVectorUnit("titleVector", qv, 5, nil)
	if got, want := fmt.Sprintf("%#v", rv), fmt.Sprintf("%#v", lv); got != want {
		t.Errorf("SearchVectorUnit: remote %s local %s", got, want)
	}

	// Document access.
	if doc, ok := c.DocByID("kb00005#0"); !ok || doc.ID != "kb00005#0" {
		t.Errorf("DocByID: got %v %v", doc, ok)
	}
	if _, ok := c.DocByID("kb00007#0"); ok {
		t.Error("DocByID returned a deleted chunk")
	}
	if got, want := len(c.LiveDocs()), local.LiveLen(); got != want {
		t.Errorf("LiveDocs: %d docs, want %d", got, want)
	}
	if got, want := c.HasParent("kb00005"), true; got != want {
		t.Errorf("HasParent: %v", got)
	}
	if ids := c.ParentChunkIDs("kb00005"); len(ids) == 0 {
		t.Error("ParentChunkIDs empty")
	}

	// Snapshot round trip: the remote snapshot restores to the same corpus.
	var snap bytes.Buffer
	if err := c.Save(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := index.ReadSegmented(&snap, cfg, seg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.LiveLen(), local.LiveLen(); got != want {
		t.Errorf("restored snapshot holds %d live chunks, want %d", got, want)
	}
}

// TestServerIsolatesShards verifies one server hosts independent stores per
// logical shard id.
func TestServerIsolatesShards(t *testing.T) {
	srv := startServer(t, ServerConfig{Index: testConfig()})
	c0 := NewClient(ClientConfig{Addr: srv.Addr(), Shard: 0})
	c1 := NewClient(ClientConfig{Addr: srv.Addr(), Shard: 1})
	defer c0.Close()
	defer c1.Close()
	if err := c0.Add(testDoc(1)); err != nil {
		t.Fatal(err)
	}
	if got := c0.Len(); got != 1 {
		t.Fatalf("shard 0 holds %d docs, want 1", got)
	}
	if got := c1.Len(); got != 0 {
		t.Fatalf("shard 1 holds %d docs, want 0", got)
	}
}

// TestGroupFailover proves a replica group survives a dead endpoint: with
// one live and one unreachable replica, every read still succeeds.
func TestGroupFailover(t *testing.T) {
	cfg := testConfig()
	srv := startServer(t, ServerConfig{Index: cfg})
	live := NewClient(ClientConfig{Addr: srv.Addr(), Shard: 0, DialTimeout: 500 * time.Millisecond})
	// A listener we close immediately gives a port that refuses connections.
	deadSrv := startServer(t, ServerConfig{Index: cfg})
	deadAddr := deadSrv.Addr()
	deadSrv.Close()
	dead := NewClient(ClientConfig{Addr: deadAddr, Shard: 0, DialTimeout: 500 * time.Millisecond})

	for name, g := range map[string]*Group{
		"dead-first": NewGroup([]*Client{dead, live}, time.Millisecond),
		"live-first": NewGroup([]*Client{live, dead}, time.Millisecond),
	} {
		if err := g.AddBulk([]index.Document{testDoc(0), testDoc(1)}); err == nil {
			t.Errorf("%s: write fan-out hid the dead replica", name)
		}
		hits, err := g.SearchText(context.Background(), "documento", 5, index.TextOptions{})
		if err != nil {
			t.Fatalf("%s: read did not fail over: %v", name, err)
		}
		if len(hits) == 0 {
			t.Fatalf("%s: no hits from the live replica", name)
		}
	}
}

// TestGroupAllReplicasDown: when every replica is unreachable the group
// reports an error (which the facade converts into a shard-down
// degradation).
func TestGroupAllReplicasDown(t *testing.T) {
	srv := startServer(t, ServerConfig{Index: testConfig()})
	addr := srv.Addr()
	srv.Close()
	dead := NewClient(ClientConfig{Addr: addr, Shard: 0, DialTimeout: 200 * time.Millisecond})
	g := NewGroup([]*Client{dead}, time.Millisecond)
	if _, err := g.SearchText(context.Background(), "x", 5, index.TextOptions{}); err == nil {
		t.Fatal("want error when all replicas are down")
	}
}

// TestPlacement checks the consistent-hash placement invariants.
func TestPlacement(t *testing.T) {
	endpoints := []string{"a:1", "b:1", "c:1", "d:1"}
	p := Placement(endpoints, 8, 2)
	if len(p) != 8 {
		t.Fatalf("placement covers %d shards, want 8", len(p))
	}
	for s, replicas := range p {
		if len(replicas) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", s, len(replicas))
		}
		if replicas[0] == replicas[1] {
			t.Fatalf("shard %d placed both replicas on %s", s, replicas[0])
		}
	}
	// Deterministic.
	q := Placement(endpoints, 8, 2)
	if fmt.Sprintf("%v", p) != fmt.Sprintf("%v", q) {
		t.Fatal("placement is not deterministic")
	}
	// Clamped rf.
	if one := Placement([]string{"a:1"}, 4, 3); len(one[0]) != 1 {
		t.Fatalf("rf not clamped: %v", one[0])
	}
	// Removing one endpoint moves only a fraction of assignments.
	moved := 0
	reduced := Placement([]string{"a:1", "b:1", "c:1"}, 8, 2)
	_ = reduced
	for s := range p {
		if fmt.Sprintf("%v", p[s]) != fmt.Sprintf("%v", reduced[s]) {
			moved++
		}
	}
	if moved == 8 {
		t.Error("removing one endpoint reshuffled every shard")
	}
}

// TestTopologyBackends verifies endpoint breakers are shared across shards.
func TestTopologyBackends(t *testing.T) {
	top := Topology{Endpoints: []string{"a:1", "b:1"}, Shards: 4, Replication: 2}
	backends := top.Backends()
	if len(backends) != 4 {
		t.Fatalf("got %d backends, want 4", len(backends))
	}
	seen := make(map[string]int)
	for _, b := range backends {
		g := b.(*Group)
		for _, c := range g.Replicas() {
			if c.cfg.Breaker == nil {
				t.Fatal("client missing endpoint breaker")
			}
			seen[c.cfg.Breaker.Name()]++
		}
	}
	if len(seen) != 2 {
		t.Fatalf("expected 2 shared endpoint breakers, got %v", seen)
	}
}
