// Package remote distributes the sharded index across processes. A shard
// server (cmd/uniask-shard) hosts segmented stores behind a length-prefixed
// gob wire protocol; the client side implements the shard facade's Backend
// surface, so internal/shard mixes in-process and remote shards without
// knowing the difference — the two-wave global-BM25 protocol runs the same
// RPCs either way and rankings stay byte-identical to a monolithic index at
// any topology.
//
// Topology is the front door: given endpoint addresses, a shard count and a
// replication factor, it derives a deterministic consistent-hash placement
// (Placement), builds one replicated Group per logical shard, and guards
// each endpoint with a single shared circuit breaker. Reads are hedged
// across replicas — one dead replica costs at most a hedge delay, not
// availability — and a shard only counts as down when every replica of it
// is unreachable, which the search layer then surfaces as a Degradation
// with partial results rather than an error.
package remote

import (
	"time"

	"uniask/internal/resilience"
	"uniask/internal/shard"
	"uniask/internal/vclock"
)

// Topology describes a remote shard cluster from the facade's point of
// view.
type Topology struct {
	// Endpoints are the shard-server addresses (host:port).
	Endpoints []string
	// Shards is the logical shard count (must match any snapshot the
	// cluster was seeded from).
	Shards int
	// Replication is how many distinct endpoints host each shard (default
	// 2, clamped to len(Endpoints)).
	Replication int
	// HedgeDelay tunes the replica groups' latency hedge (default
	// DefaultHedgeDelay).
	HedgeDelay time.Duration

	// Client knobs, applied to every endpoint client (zero values select
	// the ClientConfig defaults).
	DialTimeout   time.Duration
	CallTimeout   time.Duration
	StatusTimeout time.Duration
	MaxFrame      int

	// Breaker knobs. Each endpoint gets one breaker shared by every shard
	// placed on it, so an unreachable server is shed for all its shards at
	// once (zero values select the resilience defaults; Clock is for
	// tests).
	FailureThreshold int
	Cooldown         time.Duration
	Clock            vclock.Clock
	// OnBreakerChange, when set, observes endpoint breaker transitions
	// (wired to the monitor's gauges by the engine).
	OnBreakerChange func(name string, from, to resilience.State)
}

// Backends builds the per-shard backends for shard.NewWithBackends: one
// replicated Group per logical shard, over the consistent-hash placement.
// No connection is opened here — clients dial lazily — so a facade can
// boot before its shard servers are up. Returns nil when no endpoints are
// configured (the caller falls back to local shards).
func (t Topology) Backends() []shard.Backend {
	if len(t.Endpoints) == 0 || t.Shards <= 0 {
		return nil
	}
	rf := t.Replication
	if rf <= 0 {
		rf = 2
	}
	breakers := make(map[string]*resilience.Breaker, len(t.Endpoints))
	for _, ep := range t.Endpoints {
		breakers[ep] = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "remote:" + ep,
			FailureThreshold: t.FailureThreshold,
			Cooldown:         t.Cooldown,
			Clock:            t.Clock,
			OnStateChange:    t.OnBreakerChange,
		})
	}
	placement := Placement(t.Endpoints, t.Shards, rf)
	backends := make([]shard.Backend, t.Shards)
	for s, replicas := range placement {
		clients := make([]*Client, len(replicas))
		for i, ep := range replicas {
			clients[i] = NewClient(ClientConfig{
				Addr:          ep,
				Shard:         s,
				DialTimeout:   t.DialTimeout,
				CallTimeout:   t.CallTimeout,
				StatusTimeout: t.StatusTimeout,
				MaxFrame:      t.MaxFrame,
				Breaker:       breakers[ep],
			})
		}
		backends[s] = NewGroup(clients, t.HedgeDelay)
	}
	return backends
}
