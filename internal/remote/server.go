package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"uniask/internal/index"
	"uniask/internal/trace"
)

// ServerConfig parameterizes a shard server.
type ServerConfig struct {
	// Index configures every hosted store (schema, analyzer, BM25, vector
	// backend). It must match the facade's configuration — the wire carries
	// documents and queries, not configuration.
	Index index.Config
	// Segment tunes the hosted stores' segmented write path.
	Segment index.SegmentConfig
	// MaxFrame caps incoming frame payloads (0 = DefaultMaxFrame).
	MaxFrame int
	// Tracer, when set, records one server-side request span per RPC,
	// stamped with the caller's propagated trace id (queryable through the
	// server process's own /api/traces if it mounts one).
	Tracer *trace.Tracer
}

// Server hosts one or more logical index shards behind the wire protocol.
// Stores are created lazily on first reference, so placement is driven
// entirely by the clients: whichever shard ids a facade routes here come
// into existence here. Safe for concurrent use; each accepted connection
// is served by its own goroutine against the shared stores (the segmented
// store's reader/writer concurrency contract covers cross-connection
// races).
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	stores map[int]*index.Segmented
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer creates an idle server; call Start (or Serve) to accept
// connections.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg, stores: make(map[int]*index.Segmented), conns: make(map[net.Conn]struct{})}
}

// Store returns the hosted store for a logical shard id, creating it on
// first reference.
func (s *Server) Store(shard int) *index.Segmented {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stores[shard]
	if !ok {
		st = index.NewSegmented(s.cfg.Index, s.cfg.Segment)
		s.stores[shard] = st
	}
	return st
}

// AdoptStore installs a pre-built store (e.g. restored from a snapshot at
// boot) as the given logical shard.
func (s *Server) AdoptStore(shard int, st *index.Segmented) {
	s.mu.Lock()
	s.stores[shard] = st
	s.mu.Unlock()
}

// Shards lists the hosted logical shard ids.
func (s *Server) Shards() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.stores))
	for id := range s.stores {
		out = append(out, id)
	}
	return out
}

// Start binds addr (use "127.0.0.1:0" for an ephemeral loopback port) and
// serves in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("remote: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.accept(ln)
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on a caller-provided listener until it is
// closed (tests drive loopback or in-memory listeners through this).
func (s *Server) Serve(ln net.Listener) {
	s.accept(ln)
}

// Close stops accepting, severs every live connection and waits for the
// connection goroutines to drain. Hosted stores stay intact (Save them
// first for a graceful replacement; see docs/OPERATIONS.md).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	for _, st := range s.allStores() {
		st.WaitCompaction()
	}
}

func (s *Server) allStores() []*index.Segmented {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*index.Segmented, 0, len(s.stores))
	for _, st := range s.stores {
		out = append(out, st)
	}
	return out
}

// accept runs the listener loop; it returns when the listener dies.
func (s *Server) accept(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn validates the handshake and serves request frames until the
// connection errors or closes. Requests on one connection are sequential
// (the client pools connections for concurrency), so responses never
// interleave.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	banner := make([]byte, len(Handshake))
	if _, err := io.ReadFull(conn, banner); err != nil || string(banner) != Handshake {
		return
	}
	if _, err := io.WriteString(conn, Handshake); err != nil {
		return
	}
	for {
		payload, err := ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// Tell the peer why before hanging up; the stream position
				// is poisoned so the connection cannot be reused.
				if out, encErr := encodeFrame(&response{Err: err.Error()}); encErr == nil {
					WriteFrame(conn, out)
				}
			}
			return
		}
		req, err := decodeRequest(payload)
		var resp *response
		if err != nil {
			resp = &response{Err: err.Error()}
		} else {
			resp = s.handle(req)
		}
		out, err := encodeFrame(resp)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
		if resp.Err != "" && req == nil {
			return // undecodable stream: do not try to resynchronize
		}
	}
}

// handle dispatches one RPC against the target shard's store.
func (s *Server) handle(req *request) (resp *response) {
	if s.cfg.Tracer != nil {
		_, treq := s.cfg.Tracer.StartRequest(context.Background(), "remote."+req.Op.String())
		if root := treq.Root(); root != nil {
			root.SetAttr("remote.traceId", req.TraceID)
			root.SetAttr("shard", strconv.Itoa(req.Shard))
		}
		defer treq.End()
	}
	defer func() {
		// A poisoned store must fail one RPC, not the whole server.
		if p := recover(); p != nil {
			resp = &response{Err: fmt.Sprintf("remote: %s panicked: %v", req.Op, p)}
		}
	}()
	st := s.Store(req.Shard)
	switch req.Op {
	case opPing:
		return &response{OK: true}
	case opCollectStats:
		cs := st.CollectStats(req.Fields, req.Terms)
		return &response{Stats: &cs}
	case opSearchText:
		return &response{Hits: st.SearchText(req.Query, req.N, req.Opts)}
	case opSearchTextGlobal:
		stats := req.Stats
		if stats == nil {
			stats = &index.CorpusStats{}
		}
		return &response{Hits: st.SearchTextGlobal(req.Query, req.N, req.Opts, stats)}
	case opSearchVector:
		return &response{Hits: st.SearchVectorUnit(req.Field, req.Vector, req.K, req.Filters)}
	case opAdd:
		if len(req.Docs) != 1 {
			return &response{Err: fmt.Sprintf("remote: add wants 1 document, got %d", len(req.Docs))}
		}
		if err := st.Add(req.Docs[0]); err != nil {
			return &response{Err: err.Error()}
		}
		return &response{OK: true}
	case opAddBulk:
		if err := st.AddBulk(req.Docs); err != nil {
			return &response{Err: err.Error()}
		}
		return &response{OK: true, N: len(req.Docs)}
	case opDelete:
		return &response{OK: st.Delete(req.ID)}
	case opDeleteParent:
		return &response{N: st.DeleteParent(req.ID)}
	case opParentChunkIDs:
		return &response{IDs: st.ParentChunkIDs(req.ID)}
	case opHasParent:
		return &response{OK: st.HasParent(req.ID)}
	case opDocByID:
		doc, ok := st.DocByID(req.ID)
		if !ok {
			return &response{OK: false}
		}
		return &response{OK: true, Doc: &doc}
	case opDoc:
		if req.Ord < 0 || req.Ord >= st.Len() {
			return &response{Err: fmt.Sprintf("remote: ordinal %d out of range", req.Ord)}
		}
		doc := st.Doc(req.Ord)
		return &response{Doc: &doc}
	case opLiveDocs:
		return &response{Docs: st.LiveDocs()}
	case opStatus:
		return &response{Status: &shardStatus{
			Epoch:      st.Epoch(),
			StatsKey:   st.StatsKey(),
			Len:        st.Len(),
			LiveLen:    st.LiveLen(),
			Tombstones: st.Tombstones(),
			Stats:      st.Stats(),
			Segments:   st.SegmentStats(),
		}}
	case opPublish:
		st.Publish()
		return &response{OK: true}
	case opWaitCompaction:
		st.WaitCompaction()
		return &response{OK: true}
	case opSnapshot:
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Snapshot: buf.Bytes()}
	}
	return &response{Err: fmt.Sprintf("remote: unknown op %d", uint8(req.Op))}
}
