package remote

// Race stress for the remote scatter-gather: concurrent readers hammer a
// replicated remote facade — text, vector, point-lookup and staleness-gauge
// traffic — while a single live writer ingests, publishes and deletes.
// This is the concurrency contract of the monolithic index (any number of
// readers racing one writer) re-proven with the connection pool, the hedged
// fan-out and the shard servers' own locking in the loop; the test only
// means something under `-race`, which `make check` guarantees.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uniask/internal/index"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

func TestStressRemoteIngestWhileQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is not a -short test")
	}
	cfg := testConfig()
	seg := index.SegmentConfig{MemtableMaxDocs: 16, CompactionFanIn: 2}
	endpoints := make([]string, 3)
	for i := range endpoints {
		endpoints[i] = startServer(t, ServerConfig{Index: cfg, Segment: seg}).Addr()
	}
	backends := Topology{Endpoints: endpoints, Shards: 4, Replication: 2}.Backends()
	facade := shard.NewWithBackends(shard.Config{Shards: 4, Index: cfg, Segment: seg}, backends)
	defer facade.Close()

	const (
		totalDocs   = 240
		readWorkers = 4
	)
	qvec := make(vector.Vector, 8)
	for d := range qvec {
		qvec[d] = float32(d) / 8
	}

	var (
		writerDone atomic.Bool
		searches   atomic.Int64
	)
	var readers sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < readWorkers; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for i := 0; !writerDone.Load(); i++ {
				switch i % 4 {
				case 0:
					hits, down := facade.SearchTextPartial(ctx, "conto corrente carte", 10, index.TextOptions{})
					if down != 0 {
						t.Errorf("reader %d: text leg reported %d shards down on a healthy cluster", w, down)
						return
					}
					_ = hits
				case 1:
					_, down := facade.SearchVectorPartial(ctx, "titleVector", qvec, 10, nil)
					if down != 0 {
						t.Errorf("reader %d: vector leg reported %d shards down on a healthy cluster", w, down)
						return
					}
				case 2:
					// The staleness gauges the query cache keys on; they must
					// stay readable (and monotonic per shard) mid-ingest.
					_ = facade.Epoch()
					_ = facade.StatsKey()
					_ = facade.LiveLen()
				case 3:
					facade.DocByID(fmt.Sprintf("kb%05d#0", i%totalDocs))
				}
				searches.Add(1)
			}
		}(w)
	}

	// The single live writer: ingest with periodic publication, deleting
	// every 10th parent after it was published.
	for i := 0; i < totalDocs; i++ {
		if err := facade.Add(testDoc(i)); err != nil {
			t.Errorf("add %d: %v", i, err)
			break
		}
		if i%32 == 31 {
			facade.Publish()
		}
		if i%10 == 9 {
			facade.DeleteParent(fmt.Sprintf("kb%05d", i-9))
		}
	}
	writerDone.Store(true)
	readers.Wait()
	if t.Failed() {
		return
	}

	facade.Publish()
	facade.WaitCompaction()
	if got, want := facade.LiveLen(), totalDocs-totalDocs/10; got != want {
		t.Fatalf("after the storm: %d live chunks, want %d", got, want)
	}
	if facade.Tombstones() != 0 {
		t.Fatalf("compaction left %d tombstones", facade.Tombstones())
	}
	if n := searches.Load(); n < int64(readWorkers) {
		t.Fatalf("readers completed only %d operations", n)
	}
	t.Logf("storm: %d reader operations raced %d writes", searches.Load(), totalDocs)
}
