package remote

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"time"

	"uniask/internal/index"
	"uniask/internal/resilience"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// DefaultHedgeDelay is how long a replica group waits on the leading
// replica before launching a hedge against the next one. Loopback and
// rack-local RPCs answer well under this; anything slower is worth hedging.
const DefaultHedgeDelay = 2 * time.Millisecond

var errNoReplicas = errors.New("remote: no replicas configured")

// Group fans one logical shard out over replica endpoints and implements
// the facade's Backend surface:
//
//   - Reads are hedged-failover: the group launches the preferred replica,
//     arms a hedge timer, and launches the next replica on either a failure
//     (immediately) or the timer (latency hedge). First success wins and
//     cancels the losers. The query only fails when every replica has
//     failed — a single healthy replica means 100% availability for the
//     shard.
//   - Writes fan out to every replica synchronously, so replicas stay
//     byte-identical (same documents in the same order) and any replica can
//     serve any read. A write error is reported after all replicas were
//     attempted.
//
// Replica preference rotates per call (spreading load) and demotes
// endpoints whose breaker is open, so a dead replica stops being the first
// attempt after a few failures and recovers via the breaker's half-open
// probe.
type Group struct {
	replicas   []*Client
	hedgeDelay time.Duration
	next       atomic.Uint64
}

var (
	_ shard.Backend        = (*Group)(nil)
	_ shard.HealthReporter = (*Group)(nil)
)

// NewGroup builds a replica group (hedgeDelay <= 0 selects
// DefaultHedgeDelay). Panics on an empty replica set: a shard with no
// endpoints is a topology bug, not a runtime condition.
func NewGroup(replicas []*Client, hedgeDelay time.Duration) *Group {
	if len(replicas) == 0 {
		panic(errNoReplicas)
	}
	if hedgeDelay <= 0 {
		hedgeDelay = DefaultHedgeDelay
	}
	return &Group{replicas: replicas, hedgeDelay: hedgeDelay}
}

// Replicas exposes the member clients (tests, diagnostics).
func (g *Group) Replicas() []*Client { return g.replicas }

// order returns the replica attempt order for one read: rotated by a
// per-group counter for load spreading, with open-breaker endpoints
// demoted to the back (they still get attempted — as last resorts — which
// doubles as the half-open probe path).
func (g *Group) order() []*Client {
	n := len(g.replicas)
	start := int(g.next.Add(1)) % n
	rotated := make([]*Client, 0, n)
	for i := 0; i < n; i++ {
		rotated = append(rotated, g.replicas[(start+i)%n])
	}
	if n == 1 {
		return rotated
	}
	ordered := rotated[:0:0]
	var demoted []*Client
	for _, c := range rotated {
		if c.breakerState() == resilience.Open {
			demoted = append(demoted, c)
		} else {
			ordered = append(ordered, c)
		}
	}
	return append(ordered, demoted...)
}

// hedged runs op against the group's replicas with hedged failover. It is
// a package-level function because methods cannot introduce type
// parameters.
func hedged[T any](ctx context.Context, g *Group, op func(ctx context.Context, c *Client) (T, error)) (T, error) {
	var zero T
	order := g.order()
	if len(order) == 1 {
		return op(ctx, order[0])
	}
	// Shared cancelable context: the first success reaps every loser (their
	// blocked reads abort via the connection-deadline poison).
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	results := make(chan outcome, len(order))
	launched, pending := 0, 0
	launch := func() {
		c := order[launched]
		launched++
		pending++
		go func() {
			v, err := op(hctx, c)
			results <- outcome{v: v, err: err}
		}()
	}
	launch()
	timer := time.NewTimer(g.hedgeDelay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case out := <-results:
			pending--
			if out.err == nil {
				return out.v, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if launched < len(order) {
				launch() // failure: escalate to the next replica immediately
				continue
			}
			if pending == 0 {
				return zero, firstErr // all replicas down → the shard is down
			}
		case <-timer.C:
			if launched < len(order) {
				launch() // latency hedge: race the next replica
				timer.Reset(g.hedgeDelay)
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// fanout applies a write to every replica, returning the first error after
// all were attempted (a partially failed write leaves the failing replica
// behind; its breaker records nothing here — writes carry their error to
// the ingest caller instead).
func (g *Group) fanout(op func(c *Client) error) error {
	var first error
	for _, c := range g.replicas {
		if err := op(c); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- Backend: writes ----

// Add implements shard.Backend.
func (g *Group) Add(doc index.Document) error {
	return g.fanout(func(c *Client) error { return c.Add(doc) })
}

// AddBulk implements shard.Backend.
func (g *Group) AddBulk(docs []index.Document) error {
	return g.fanout(func(c *Client) error { return c.AddBulk(docs) })
}

// Delete implements shard.Backend: true when any replica deleted the chunk.
func (g *Group) Delete(chunkID string) bool {
	deleted := false
	for _, c := range g.replicas {
		if c.Delete(chunkID) {
			deleted = true
		}
	}
	return deleted
}

// DeleteParent implements shard.Backend: the max per-replica count (all
// replicas hold the same chunks; max tolerates one being down).
func (g *Group) DeleteParent(parentID string) int {
	n := 0
	for _, c := range g.replicas {
		if k := c.DeleteParent(parentID); k > n {
			n = k
		}
	}
	return n
}

// ParentChunkIDs implements shard.Backend.
func (g *Group) ParentChunkIDs(parentID string) []string {
	ids, _ := hedged(context.Background(), g, func(ctx context.Context, c *Client) ([]string, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opParentChunkIDs, ID: parentID})
		if err != nil {
			return nil, err
		}
		return resp.IDs, nil
	})
	return ids
}

// HasParent implements shard.Backend.
func (g *Group) HasParent(parentID string) bool {
	ok, _ := hedged(context.Background(), g, func(ctx context.Context, c *Client) (bool, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opHasParent, ID: parentID})
		if err != nil {
			return false, err
		}
		return resp.OK, nil
	})
	return ok
}

// ---- Backend: queries (hedged) ----

// CollectStats implements shard.Backend.
func (g *Group) CollectStats(ctx context.Context, fields, terms []string) (index.CorpusStats, error) {
	return hedged(ctx, g, func(ctx context.Context, c *Client) (index.CorpusStats, error) {
		return c.CollectStats(ctx, fields, terms)
	})
}

// SearchText implements shard.Backend.
func (g *Group) SearchText(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, error) {
	return hedged(ctx, g, func(ctx context.Context, c *Client) ([]index.Hit, error) {
		return c.SearchText(ctx, query, n, opts)
	})
}

// SearchTextGlobal implements shard.Backend.
func (g *Group) SearchTextGlobal(ctx context.Context, query string, n int, opts index.TextOptions, stats *index.CorpusStats) ([]index.Hit, error) {
	return hedged(ctx, g, func(ctx context.Context, c *Client) ([]index.Hit, error) {
		return c.SearchTextGlobal(ctx, query, n, opts, stats)
	})
}

// SearchVectorUnit implements shard.Backend.
func (g *Group) SearchVectorUnit(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, error) {
	return hedged(ctx, g, func(ctx context.Context, c *Client) ([]index.Hit, error) {
		return c.SearchVectorUnit(ctx, field, q, k, filters)
	})
}

// DocByID implements shard.Backend.
func (g *Group) DocByID(id string) (index.Document, bool) {
	type docHit struct {
		doc index.Document
		ok  bool
	}
	out, err := hedged(context.Background(), g, func(ctx context.Context, c *Client) (docHit, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opDocByID, ID: id})
		if err != nil {
			return docHit{}, err
		}
		if !resp.OK || resp.Doc == nil {
			return docHit{}, nil
		}
		return docHit{doc: *resp.Doc, ok: true}, nil
	})
	if err != nil {
		return index.Document{}, false
	}
	return out.doc, out.ok
}

// ---- Backend: staleness signals and gauges ----

// maxStatus folds per-replica statuses with max: replicas receive the same
// writes, so a lagging or unreachable replica (serving its cached
// last-known status) never drags a monotone signal backwards.
func (g *Group) maxStatus() shardStatus {
	var out shardStatus
	for i, c := range g.replicas {
		st := c.statusOrCached()
		if i == 0 || st.Epoch > out.Epoch || (st.Epoch == out.Epoch && st.StatsKey > out.StatsKey) {
			epoch, key := maxU64(out.Epoch, st.Epoch), maxU64(out.StatsKey, st.StatsKey)
			out = st
			out.Epoch, out.StatsKey = epoch, key
		} else {
			out.Epoch = maxU64(out.Epoch, st.Epoch)
			out.StatsKey = maxU64(out.StatsKey, st.StatsKey)
		}
	}
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Epoch implements shard.Backend.
func (g *Group) Epoch() uint64 { return g.maxStatus().Epoch }

// StatsKey implements shard.Backend.
func (g *Group) StatsKey() uint64 { return g.maxStatus().StatsKey }

// Len implements shard.Backend.
func (g *Group) Len() int { return g.maxStatus().Len }

// LiveLen implements shard.Backend.
func (g *Group) LiveLen() int { return g.maxStatus().LiveLen }

// Tombstones implements shard.Backend.
func (g *Group) Tombstones() int { return g.maxStatus().Tombstones }

// Stats implements shard.Backend.
func (g *Group) Stats() index.Stats { return g.maxStatus().Stats }

// SegmentStats implements shard.Backend.
func (g *Group) SegmentStats() index.SegmentStats { return g.maxStatus().Segments }

// ---- Backend: lifecycle and bulk access ----

// Doc implements shard.Backend.
func (g *Group) Doc(ord int) index.Document {
	doc, _ := hedged(context.Background(), g, func(ctx context.Context, c *Client) (index.Document, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opDoc, Ord: ord})
		if err != nil {
			return index.Document{}, err
		}
		if resp.Doc == nil {
			return index.Document{}, nil
		}
		return *resp.Doc, nil
	})
	return doc
}

// LiveDocs implements shard.Backend.
func (g *Group) LiveDocs() []index.Document {
	docs, _ := hedged(context.Background(), g, func(ctx context.Context, c *Client) ([]index.Document, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opLiveDocs})
		if err != nil {
			return nil, err
		}
		return resp.Docs, nil
	})
	return docs
}

// Publish implements shard.Backend (fans out so every replica seals its
// memtable and stays byte-identical with its peers).
func (g *Group) Publish() {
	g.fanout(func(c *Client) error { c.Publish(); return nil })
}

// WaitCompaction implements shard.Backend.
func (g *Group) WaitCompaction() {
	g.fanout(func(c *Client) error { c.WaitCompaction(); return nil })
}

// Save implements shard.Backend: the first replica that delivers a
// snapshot wins.
func (g *Group) Save(w io.Writer) error {
	snap, err := hedged(context.Background(), g, func(ctx context.Context, c *Client) ([]byte, error) {
		ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
		resp, err := c.call(ctx, &request{Op: opSnapshot})
		if err != nil {
			return nil, err
		}
		return resp.Snapshot, nil
	})
	if err != nil {
		return err
	}
	_, err = w.Write(snap)
	return err
}

// Close implements shard.Backend.
func (g *Group) Close() error {
	var first error
	for _, c := range g.replicas {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Breakers implements shard.HealthReporter: the status of each distinct
// endpoint breaker guarding this group's replicas.
func (g *Group) Breakers() []resilience.BreakerStatus {
	var out []resilience.BreakerStatus
	seen := make(map[*resilience.Breaker]bool)
	for _, c := range g.replicas {
		b := c.cfg.Breaker
		if b == nil || seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b.Status())
	}
	return out
}
