package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"uniask/internal/index"
)

// Wire format. A connection opens with a fixed handshake line in each
// direction, then carries length-prefixed frames:
//
//	"uniask-remote/1\n"                  (client → server, echoed back)
//	frame := u32 big-endian payload length | payload
//	payload := gob(request) or gob(response)
//
// Each payload is a self-contained gob stream (encoder state never spans
// frames), so a connection returned to the pool mid-conversation can never
// desynchronize the codec. The decoder enforces a frame-length cap BEFORE
// allocating: an adversarial or corrupt length prefix is refused with
// ErrFrameTooLarge and at most 4 header bytes read, never a giant
// allocation or a panic (FuzzRemoteWire pins this).

// Handshake is the connection-opening protocol banner; the version digit
// bumps on any incompatible wire change.
const Handshake = "uniask-remote/1\n"

// DefaultMaxFrame bounds a frame payload (64 MiB): far above any query or
// stats frame, sized for bulk-ingest batches and snapshot transfers.
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge is returned by ReadFrame when the length prefix exceeds
// the configured cap. The stream position is poisoned (the oversized
// payload was not consumed), so the connection must be closed.
var ErrFrameTooLarge = errors.New("remote: frame length exceeds cap")

// ErrBadHandshake is returned when the peer does not speak the protocol
// (wrong banner or wrong version).
var ErrBadHandshake = errors.New("remote: bad protocol handshake")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, refusing payloads above max (0 means
// DefaultMaxFrame) before any payload allocation happens.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// op identifies one RPC.
type op uint8

// RPC operations. The numeric values are part of the wire format; append
// only.
const (
	opPing op = iota + 1
	opCollectStats
	opSearchText
	opSearchTextGlobal
	opSearchVector
	opAdd
	opAddBulk
	opDelete
	opDeleteParent
	opParentChunkIDs
	opHasParent
	opDocByID
	opDoc
	opLiveDocs
	opStatus
	opPublish
	opWaitCompaction
	opSnapshot
)

func (o op) String() string {
	switch o {
	case opPing:
		return "ping"
	case opCollectStats:
		return "collectStats"
	case opSearchText:
		return "searchText"
	case opSearchTextGlobal:
		return "searchTextGlobal"
	case opSearchVector:
		return "searchVector"
	case opAdd:
		return "add"
	case opAddBulk:
		return "addBulk"
	case opDelete:
		return "delete"
	case opDeleteParent:
		return "deleteParent"
	case opParentChunkIDs:
		return "parentChunkIDs"
	case opHasParent:
		return "hasParent"
	case opDocByID:
		return "docByID"
	case opDoc:
		return "doc"
	case opLiveDocs:
		return "liveDocs"
	case opStatus:
		return "status"
	case opPublish:
		return "publish"
	case opWaitCompaction:
		return "waitCompaction"
	case opSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// request is the one envelope every RPC uses; unused fields stay zero and
// cost almost nothing on the wire (gob omits them).
type request struct {
	Op    op
	Shard int
	// TraceID propagates the caller's trace across the process boundary:
	// the shard server stamps it on its own request span, so client-side
	// remote.rpc spans and server-side spans correlate by id.
	TraceID string

	Query   string
	N       int
	Opts    index.TextOptions
	Stats   *index.CorpusStats
	Fields  []string
	Terms   []string
	Field   string
	Vector  []float32
	K       int
	Filters []index.Filter
	Docs    []index.Document
	ID      string
	Ord     int
}

// shardStatus is the combined gauge/staleness snapshot of one hosted shard,
// fetched in a single RPC.
type shardStatus struct {
	Epoch      uint64
	StatsKey   uint64
	Len        int
	LiveLen    int
	Tombstones int
	Stats      index.Stats
	Segments   index.SegmentStats
}

// response is the reply envelope. Err carries an application-level error
// (duplicate id, bad snapshot, oversized request frame) as text; transport
// health is judged only by the connection itself, so application errors
// never trip the endpoint circuit breaker.
type response struct {
	Err string

	Hits     []index.Hit
	Stats    *index.CorpusStats
	Docs     []index.Document
	Doc      *index.Document
	OK       bool
	N        int
	IDs      []string
	Status   *shardStatus
	Snapshot []byte
}

// encodeFrame gob-encodes v into a standalone frame payload.
func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeRequest decodes one request payload. It never panics on
// adversarial bytes: gob decoding of a corrupt stream returns an error.
func decodeRequest(payload []byte) (*request, error) {
	var req request
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
		return nil, fmt.Errorf("remote: decode request: %w", err)
	}
	return &req, nil
}

// decodeResponse decodes one response payload.
func decodeResponse(payload []byte) (*response, error) {
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("remote: decode response: %w", err)
	}
	return &resp, nil
}
