package remote

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerEndpoint is how many virtual nodes each endpoint contributes to
// the placement ring. More vnodes smooth the shard distribution; 64 keeps
// the ring cheap to build while bounding per-endpoint skew to a few
// percent.
const vnodesPerEndpoint = 64

// ringPoint is one virtual node on the placement ring.
type ringPoint struct {
	hash     uint64
	endpoint string
}

// buildRing hashes every endpoint's vnodes onto the ring.
func buildRing(endpoints []string) []ringPoint {
	ring := make([]ringPoint, 0, len(endpoints)*vnodesPerEndpoint)
	for _, ep := range endpoints {
		for v := 0; v < vnodesPerEndpoint; v++ {
			ring = append(ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", ep, v)), endpoint: ep})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].endpoint < ring[j].endpoint
	})
	return ring
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit avalanche finalizer (the murmur3 fmix64 constants).
// Raw FNV-1a of short, nearly identical keys ("shard-0", "shard-1",
// "host:9001#3") differs only in its low bits, which clusters every vnode
// of an endpoint into one arc of the ring and defeats the placement;
// avalanching scatters them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Placement assigns each of shards logical shards to rf distinct endpoints
// by consistent hashing: hash the shard's name onto the ring and walk
// clockwise collecting distinct endpoints. Adding or removing one endpoint
// therefore moves only ~1/len(endpoints) of the replica assignments —
// replacing a shard server does not reshuffle the whole cluster (see
// docs/OPERATIONS.md).
//
// rf is clamped to [1, len(endpoints)]; fewer endpoints than the requested
// replication factor degrades gracefully to all of them. The result is
// deterministic for a given (endpoints, shards, rf), so every facade
// derives the identical placement without coordination.
func Placement(endpoints []string, shards, rf int) [][]string {
	if len(endpoints) == 0 || shards <= 0 {
		return nil
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(endpoints) {
		rf = len(endpoints)
	}
	ring := buildRing(endpoints)
	out := make([][]string, shards)
	for s := 0; s < shards; s++ {
		h := hash64(fmt.Sprintf("shard-%d", s))
		// First ring point at or after the shard's hash, wrapping.
		start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
		replicas := make([]string, 0, rf)
		seen := make(map[string]bool, rf)
		for i := 0; i < len(ring) && len(replicas) < rf; i++ {
			ep := ring[(start+i)%len(ring)].endpoint
			if seen[ep] {
				continue
			}
			seen[ep] = true
			replicas = append(replicas, ep)
		}
		out[s] = replicas
	}
	return out
}
