package remote

import (
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"uniask/internal/index"
	"uniask/internal/resilience"
	"uniask/internal/shard"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// ClientConfig parameterizes one remote-shard client.
type ClientConfig struct {
	// Addr is the shard server's host:port.
	Addr string
	// Shard is the logical shard id this client addresses on the server.
	Shard int
	// DialTimeout bounds connection establishment plus the handshake
	// (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a single RPC when the caller's context carries no
	// tighter deadline (default 30s — generous because bulk ingest and
	// snapshot transfers ride the same path; query deadlines come from the
	// caller's per-shard context).
	CallTimeout time.Duration
	// StatusTimeout bounds the background status refresh that feeds
	// Epoch/StatsKey/gauges (default 2s — these run on the query hot path
	// and must fail fast so the cached fallback kicks in).
	StatusTimeout time.Duration
	// MaxFrame caps response frames (0 = DefaultMaxFrame).
	MaxFrame int
	// MaxIdle caps pooled idle connections (default 4).
	MaxIdle int
	// Breaker guards the endpoint. It is shared by every client addressing
	// the same endpoint (one breaker per remote endpoint, not per shard), so
	// an unreachable server is shed for all shards placed on it at once.
	// Only transport failures are recorded; application errors travel inside
	// healthy responses and say nothing about the endpoint.
	Breaker *resilience.Breaker
}

// Client speaks the wire protocol to one logical shard on one shard server
// and implements the facade's per-shard Backend surface. Dialing is lazy:
// constructing a client never touches the network, so a facade can boot
// while its shard servers are still coming up. Safe for concurrent use; a
// small connection pool backs concurrent RPCs.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	idle   []net.Conn
	closed bool

	// Last successfully fetched status. Served when the endpoint is
	// unreachable so cache keys and gauges hold their last-known (monotone)
	// values through an outage instead of collapsing to zero.
	statusMu   sync.Mutex
	lastStatus shardStatus
}

var _ shard.Backend = (*Client)(nil)

// NewClient creates a client for one logical shard on addr. No connection
// is opened until the first RPC.
func NewClient(cfg ClientConfig) *Client {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if cfg.StatusTimeout <= 0 {
		cfg.StatusTimeout = 2 * time.Second
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 4
	}
	return &Client{cfg: cfg}
}

// Addr reports the configured endpoint.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close drains the connection pool. In-flight RPCs on checked-out
// connections finish; their connections are not re-pooled.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// call runs one RPC: breaker admission, transport, breaker outcome, then
// application-error unwrapping. The span is the client half of the
// cross-process trace; the server stamps the propagated id on its own span.
func (c *Client) call(ctx context.Context, req *request) (*response, error) {
	ctx, sp := trace.Start(ctx, "remote.rpc",
		trace.A("endpoint", c.cfg.Addr),
		trace.A("op", req.Op.String()),
		trace.A("shard", strconv.Itoa(c.cfg.Shard)))
	defer sp.End()
	req.Shard = c.cfg.Shard
	req.TraceID = trace.ContextID(ctx)
	if b := c.cfg.Breaker; b != nil {
		if err := b.Allow(); err != nil {
			err = fmt.Errorf("remote: %s: %w", c.cfg.Addr, err)
			sp.SetError(err)
			return nil, err
		}
	}
	resp, err := c.do(ctx, req)
	if b := c.cfg.Breaker; b != nil {
		b.RecordCtx(ctx, err)
	}
	if err == nil && resp.Err != "" {
		err = fmt.Errorf("remote: %s %s: %s", c.cfg.Addr, req.Op, resp.Err)
	}
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	return resp, nil
}

// do performs the transport round trip on a pooled connection. Any
// transport error retires the connection (a half-written frame poisons the
// stream); only clean round trips return to the pool.
func (c *Client) do(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := encodeFrame(req)
	if err != nil {
		return nil, fmt.Errorf("remote: encode %s: %w", req.Op, err)
	}
	conn, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.CallTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	// Cancellation poisons the connection deadline so a blocked read aborts
	// promptly — this is what lets hedged losers die as soon as a replica
	// wins.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	resp, err := func() (*response, error) {
		if err := WriteFrame(conn, payload); err != nil {
			return nil, err
		}
		raw, err := ReadFrame(conn, c.cfg.MaxFrame)
		if err != nil {
			return nil, err
		}
		return decodeResponse(raw)
	}()
	stopped := stop()
	if err != nil {
		conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The I/O error is just the poisoned deadline observed; report
			// the cancellation itself (which the breaker ignores).
			err = ctxErr
		}
		return nil, fmt.Errorf("remote: %s %s: %w", c.cfg.Addr, req.Op, err)
	}
	if !stopped {
		// The round trip finished, but cancellation fired while it was
		// completing: the watcher may poison the deadline at any moment
		// (stop does not wait for a started callback), so the connection
		// must not reach the pool. The response itself is good.
		conn.Close()
		return resp, nil
	}
	conn.SetDeadline(time.Time{})
	c.putConn(conn)
	return resp, nil
}

// conn checks out an idle connection or dials a new one.
func (c *Client) conn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: %s: client closed", c.cfg.Addr)
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return c.dial(ctx)
}

// putConn returns a healthy connection to the pool (or closes it when the
// pool is full or the client is closed).
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.cfg.MaxIdle {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// dial opens a connection and exchanges the protocol handshake.
func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", c.cfg.Addr, err)
	}
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := io.WriteString(conn, Handshake); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake %s: %w", c.cfg.Addr, err)
	}
	banner := make([]byte, len(Handshake))
	if _, err := io.ReadFull(conn, banner); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake %s: %w", c.cfg.Addr, err)
	}
	if string(banner) != Handshake {
		conn.Close()
		return nil, fmt.Errorf("remote: %s: %w", c.cfg.Addr, ErrBadHandshake)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// background returns the default context for RPCs whose Backend signature
// carries none (writes, gauges, lifecycle).
func (c *Client) background() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), c.cfg.CallTimeout)
}

// ---- Backend: writes ----

// Add implements shard.Backend.
func (c *Client) Add(doc index.Document) error {
	ctx, cancel := c.background()
	defer cancel()
	_, err := c.call(ctx, &request{Op: opAdd, Docs: []index.Document{doc}})
	return err
}

// AddBulk implements shard.Backend.
func (c *Client) AddBulk(docs []index.Document) error {
	if len(docs) == 0 {
		return nil
	}
	ctx, cancel := c.background()
	defer cancel()
	_, err := c.call(ctx, &request{Op: opAddBulk, Docs: docs})
	return err
}

// Delete implements shard.Backend. An unreachable endpoint reports false
// (nothing observably deleted).
func (c *Client) Delete(chunkID string) bool {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opDelete, ID: chunkID})
	return err == nil && resp.OK
}

// DeleteParent implements shard.Backend.
func (c *Client) DeleteParent(parentID string) int {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opDeleteParent, ID: parentID})
	if err != nil {
		return 0
	}
	return resp.N
}

// ParentChunkIDs implements shard.Backend.
func (c *Client) ParentChunkIDs(parentID string) []string {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opParentChunkIDs, ID: parentID})
	if err != nil {
		return nil
	}
	return resp.IDs
}

// HasParent implements shard.Backend.
func (c *Client) HasParent(parentID string) bool {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opHasParent, ID: parentID})
	return err == nil && resp.OK
}

// ---- Backend: queries ----

// CollectStats implements shard.Backend.
func (c *Client) CollectStats(ctx context.Context, fields, terms []string) (index.CorpusStats, error) {
	resp, err := c.call(ctx, &request{Op: opCollectStats, Fields: fields, Terms: terms})
	if err != nil {
		return index.CorpusStats{}, err
	}
	if resp.Stats == nil {
		return index.CorpusStats{}, fmt.Errorf("remote: %s: empty stats response", c.cfg.Addr)
	}
	return *resp.Stats, nil
}

// SearchText implements shard.Backend.
func (c *Client) SearchText(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, error) {
	resp, err := c.call(ctx, &request{Op: opSearchText, Query: query, N: n, Opts: opts})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// SearchTextGlobal implements shard.Backend.
func (c *Client) SearchTextGlobal(ctx context.Context, query string, n int, opts index.TextOptions, stats *index.CorpusStats) ([]index.Hit, error) {
	resp, err := c.call(ctx, &request{Op: opSearchTextGlobal, Query: query, N: n, Opts: opts, Stats: stats})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// SearchVectorUnit implements shard.Backend.
func (c *Client) SearchVectorUnit(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, error) {
	resp, err := c.call(ctx, &request{Op: opSearchVector, Field: field, Vector: q, K: k, Filters: filters})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// DocByID implements shard.Backend.
func (c *Client) DocByID(id string) (index.Document, bool) {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opDocByID, ID: id})
	if err != nil || !resp.OK || resp.Doc == nil {
		return index.Document{}, false
	}
	return *resp.Doc, true
}

// ---- Backend: staleness signals and gauges ----

// status fetches a fresh combined status and caches it as the last-known
// good value.
func (c *Client) status() (shardStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.StatusTimeout)
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opStatus})
	if err != nil {
		return shardStatus{}, err
	}
	if resp.Status == nil {
		return shardStatus{}, fmt.Errorf("remote: %s: empty status response", c.cfg.Addr)
	}
	c.statusMu.Lock()
	c.lastStatus = *resp.Status
	c.statusMu.Unlock()
	return *resp.Status, nil
}

// statusOrCached fetches a fresh status, falling back to the cached
// last-known one when the endpoint is unreachable. Epochs and stats keys
// only ever grow on the server, so the cached fallback keeps the facade's
// cache keys monotone through an outage.
func (c *Client) statusOrCached() shardStatus {
	if st, err := c.status(); err == nil {
		return st
	}
	c.statusMu.Lock()
	defer c.statusMu.Unlock()
	return c.lastStatus
}

// Epoch implements shard.Backend.
func (c *Client) Epoch() uint64 { return c.statusOrCached().Epoch }

// StatsKey implements shard.Backend.
func (c *Client) StatsKey() uint64 { return c.statusOrCached().StatsKey }

// Len implements shard.Backend.
func (c *Client) Len() int { return c.statusOrCached().Len }

// LiveLen implements shard.Backend.
func (c *Client) LiveLen() int { return c.statusOrCached().LiveLen }

// Tombstones implements shard.Backend.
func (c *Client) Tombstones() int { return c.statusOrCached().Tombstones }

// Stats implements shard.Backend.
func (c *Client) Stats() index.Stats { return c.statusOrCached().Stats }

// SegmentStats implements shard.Backend.
func (c *Client) SegmentStats() index.SegmentStats { return c.statusOrCached().Segments }

// ---- Backend: lifecycle and bulk access ----

// Doc implements shard.Backend. Ordinal access is a diagnostics/migration
// path; an unreachable endpoint yields a zero document.
func (c *Client) Doc(ord int) index.Document {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opDoc, Ord: ord})
	if err != nil || resp.Doc == nil {
		return index.Document{}
	}
	return *resp.Doc
}

// LiveDocs implements shard.Backend.
func (c *Client) LiveDocs() []index.Document {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opLiveDocs})
	if err != nil {
		return nil
	}
	return resp.Docs
}

// Publish implements shard.Backend.
func (c *Client) Publish() {
	ctx, cancel := c.background()
	defer cancel()
	c.call(ctx, &request{Op: opPublish})
}

// WaitCompaction implements shard.Backend.
func (c *Client) WaitCompaction() {
	ctx, cancel := c.background()
	defer cancel()
	c.call(ctx, &request{Op: opWaitCompaction})
}

// Save implements shard.Backend: the server snapshots the shard and ships
// the bytes back in one frame.
func (c *Client) Save(w io.Writer) error {
	ctx, cancel := c.background()
	defer cancel()
	resp, err := c.call(ctx, &request{Op: opSnapshot})
	if err != nil {
		return err
	}
	if _, err := w.Write(resp.Snapshot); err != nil {
		return fmt.Errorf("remote: write snapshot: %w", err)
	}
	return nil
}

// Ping round-trips a no-op RPC (connectivity probes, smoke tests).
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.call(ctx, &request{Op: opPing})
	return err
}

// breakerState reports the endpoint breaker's current state (Closed when
// unguarded); the replica group orders hedged attempts with it.
func (c *Client) breakerState() resilience.State {
	if c.cfg.Breaker == nil {
		return resilience.Closed
	}
	return c.cfg.Breaker.State()
}
