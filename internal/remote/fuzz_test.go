package remote

// FuzzRemoteWire feeds adversarial bytes to the frame decoder and the gob
// envelope decoders — the two layers that consume untrusted network input
// on both ends of a connection. The invariants under fuzzing:
//
//   - ReadFrame never panics and never allocates beyond the configured cap,
//     no matter what length prefix the peer sends.
//   - A frame ReadFrame accepts is at most the cap; ErrFrameTooLarge frames
//     consume only the 4 header bytes.
//   - decodeRequest / decodeResponse never panic on corrupt gob payloads —
//     they return an error (or a value) and nothing else.
//   - A well-formed frame round-trips: WriteFrame then ReadFrame yields the
//     identical payload.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func FuzzRemoteWire(f *testing.F) {
	// Seeds: a tiny valid frame, a zero-length frame, a truncated header, a
	// huge length prefix with no payload, a cap-boundary prefix, and real
	// encoded request/response envelopes prefixed by their true length.
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 4, 1})
	if payload, err := encodeFrame(&request{Op: opSearchText, Query: "blocco carta", N: 5}); err == nil {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		f.Add(buf.Bytes())
	}
	if payload, err := encodeFrame(&response{Err: "boom", OK: true}); err == nil {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		f.Add(buf.Bytes())
	}

	const frameCap = 1 << 10 // tiny cap so the fuzzer reaches the refusal path often
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r, frameCap)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The refusal must happen before the payload is consumed:
				// exactly 4 header bytes gone, and the declared length must
				// really exceed the cap.
				if consumed := len(data) - r.Len(); consumed != 4 {
					t.Fatalf("ErrFrameTooLarge consumed %d bytes, want 4", consumed)
				}
				if n := binary.BigEndian.Uint32(data[:4]); int64(n) <= frameCap {
					t.Fatalf("refused %d-byte frame under the %d cap", n, frameCap)
				}
			}
			return
		}
		if len(payload) > frameCap {
			t.Fatalf("accepted %d-byte payload over the %d cap", len(payload), frameCap)
		}
		if n := binary.BigEndian.Uint32(data[:4]); int(n) != len(payload) {
			t.Fatalf("frame declared %d bytes, delivered %d", n, len(payload))
		}

		// Whatever the payload holds, the envelope decoders must not panic.
		if req, err := decodeRequest(payload); err == nil && req == nil {
			t.Fatal("decodeRequest returned nil request without error")
		}
		if resp, err := decodeResponse(payload); err == nil && resp == nil {
			t.Fatal("decodeResponse returned nil response without error")
		}

		// Round-trip: re-framing the accepted payload must reproduce it.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		again, err := ReadFrame(&buf, frameCap)
		if err != nil {
			t.Fatalf("re-read of a written frame: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("frame round-trip changed the payload")
		}
	})
}

// TestReadFrameShortHeader pins the non-fuzz edge: a reader that dies before
// delivering 4 header bytes yields io.EOF / io.ErrUnexpectedEOF, never a
// partial-frame success.
func TestReadFrameShortHeader(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 'x'}), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want io.ErrUnexpectedEOF", err)
	}
}
