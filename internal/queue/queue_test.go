package queue

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		if err := q.Publish(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v want %d", v, ok, i)
		}
	}
}

func TestTryDequeueEmpty(t *testing.T) {
	q := New[string]()
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty returned ok")
	}
	q.Publish("x")
	if v, ok := q.TryDequeue(); !ok || v != "x" {
		t.Fatalf("TryDequeue = %q,%v", v, ok)
	}
}

func TestDequeueBlocksUntilPublish(t *testing.T) {
	q := New[int]()
	got := make(chan int, 1)
	go func() {
		v, _ := q.Dequeue()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Dequeue returned before publish")
	case <-time.After(20 * time.Millisecond):
	}
	q.Publish(42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Dequeue never returned")
	}
}

func TestCloseDrains(t *testing.T) {
	q := New[int]()
	q.Publish(1)
	q.Close()
	if err := q.Publish(2); err != ErrClosed {
		t.Fatalf("Publish after close: %v", err)
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("pending message lost: %d,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on closed+empty returned ok")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	q := New[int]()
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("waiter got a message from empty closed queue")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not unblocked by Close")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int]()
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Publish(base + i)
			}
		}(p * perProducer)
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d distinct messages, want %d", len(seen), producers*perProducer)
	}
	pub, cons := q.Stats()
	if pub != producers*perProducer || cons != pub {
		t.Fatalf("stats = %d/%d", pub, cons)
	}
}

func TestLen(t *testing.T) {
	q := New[int]()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.Publish(1)
	q.Publish(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.TryDequeue()
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}
