// Package queue provides the in-memory message queue that connects the
// ingestion service to the indexing service, substituting for the cloud
// message-queue resource in the deployment architecture (§3): the ingester
// posts one message per new or modified document, and the indexer consumes
// them through an event-based trigger.
package queue

import (
	"errors"
	"sync"
)

// ErrClosed is returned when publishing to a closed queue.
var ErrClosed = errors.New("queue: closed")

// Queue is an unbounded FIFO message queue safe for concurrent use.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool

	published int64
	consumed  int64
}

// New creates an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Publish appends a message.
func (q *Queue[T]) Publish(item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, item)
	q.published++
	q.cond.Signal()
	return nil
}

// Dequeue removes and returns the oldest message, blocking until one is
// available or the queue is closed. The second return is false when the
// queue has been closed and drained.
func (q *Queue[T]) Dequeue() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.consumed++
	return item, true
}

// TryDequeue removes the oldest message without blocking.
func (q *Queue[T]) TryDequeue() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.consumed++
	return item, true
}

// Close marks the queue closed; pending messages can still be drained.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len reports the number of pending messages.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats reports lifetime published/consumed counters.
func (q *Queue[T]) Stats() (published, consumed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.published, q.consumed
}
