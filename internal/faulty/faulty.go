// Package faulty provides fault-injection wrappers for UniAsk's
// remote-shaped dependencies — the chat-completion client and the embedder.
// A seeded Schedule decides, call by call, whether the wrapped dependency
// answers normally, errors, answers slowly, hangs until the caller's
// context is cancelled, or returns a malformed response. The chaos test
// suite drives full queries through engines assembled over these wrappers
// and asserts that the resilience layer keeps the system available.
//
// Schedules are deterministic: the same seed and rates produce the same
// fault sequence, so a chaos failure reproduces with its seed.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"uniask/internal/llm"
	"uniask/internal/vector"
)

// Kind is one injected fault type.
type Kind int

// Fault kinds.
const (
	// OK passes the call through untouched.
	OK Kind = iota
	// Error fails the call immediately with ErrInjected.
	Error
	// Slow delays the call by the schedule's SlowLatency, then passes it
	// through.
	Slow
	// Hang blocks until the caller's context is cancelled (the stuck
	// upstream connection that only a deadline can cut).
	Hang
	// Malformed passes the call through but corrupts the response (garbage
	// content for the LLM, a wrong-dimension vector for the embedder).
	Malformed
)

// String names the kind for counters and test output.
func (k Kind) String() string {
	switch k {
	case OK:
		return "ok"
	case Error:
		return "error"
	case Slow:
		return "slow"
	case Hang:
		return "hang"
	case Malformed:
		return "malformed"
	}
	return "unknown"
}

// ErrInjected is the upstream failure the Error fault returns.
var ErrInjected = errors.New("faulty: injected upstream error")

// Schedule decides the fault for each call. Construct with NewSchedule
// (rate-driven, seeded) or Script (explicit sequence). Safe for concurrent
// use; concurrent callers draw from one shared deterministic sequence.
type Schedule struct {
	// SlowLatency is the delay the Slow fault adds (default 20ms).
	SlowLatency time.Duration

	mu     sync.Mutex
	rng    *rand.Rand
	script []Kind // when non-empty, consumed before the rng takes over
	rates  [4]float64
	counts map[Kind]int
}

// NewSchedule builds a rate-driven schedule: each call independently draws
// Error with errorRate, Slow with slowRate, Hang with hangRate, Malformed
// with malformedRate (rates summing above 1 saturate in that order), OK
// otherwise. The seed fixes the whole sequence.
func NewSchedule(seed int64, errorRate, slowRate, hangRate, malformedRate float64) *Schedule {
	return &Schedule{
		SlowLatency: 20 * time.Millisecond,
		rng:         rand.New(rand.NewSource(seed)),
		rates:       [4]float64{errorRate, slowRate, hangRate, malformedRate},
		counts:      make(map[Kind]int),
	}
}

// Script builds a schedule that injects exactly the given kinds in order,
// then answers OK forever — the tool for provoking precise breaker
// transitions in tests.
func Script(kinds ...Kind) *Schedule {
	return &Schedule{
		SlowLatency: 20 * time.Millisecond,
		rng:         rand.New(rand.NewSource(1)),
		script:      append([]Kind(nil), kinds...),
		counts:      make(map[Kind]int),
	}
}

// next draws the fault for one call.
func (s *Schedule) next() Kind {
	s.mu.Lock()
	defer s.mu.Unlock()
	var k Kind
	if len(s.script) > 0 {
		k = s.script[0]
		s.script = s.script[1:]
	} else {
		x := s.rng.Float64()
		switch {
		case x < s.rates[0]:
			k = Error
		case x < s.rates[0]+s.rates[1]:
			k = Slow
		case x < s.rates[0]+s.rates[1]+s.rates[2]:
			k = Hang
		case x < s.rates[0]+s.rates[1]+s.rates[2]+s.rates[3]:
			k = Malformed
		default:
			k = OK
		}
	}
	s.counts[k]++
	return k
}

// Counts reports how many calls drew each fault kind so far.
func (s *Schedule) Counts() map[Kind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Kind]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Calls reports the total number of scheduled calls.
func (s *Schedule) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, v := range s.counts {
		n += v
	}
	return n
}

// Client wraps an llm.Client with fault injection.
type Client struct {
	// Inner is the real client answering OK/Slow/Malformed calls.
	Inner llm.Client
	// Sched drives the fault sequence.
	Sched *Schedule
}

// Complete implements llm.Client.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	switch c.Sched.next() {
	case Error:
		return llm.Response{}, fmt.Errorf("%w (llm)", ErrInjected)
	case Slow:
		select {
		case <-time.After(c.Sched.SlowLatency):
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	case Hang:
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	case Malformed:
		resp, err := c.Inner.Complete(ctx, req)
		if err != nil {
			return resp, err
		}
		// A truncated, citation-free burst of the kind a flaky gateway
		// produces; downstream parsing must survive it.
		resp.Content = "<<<!garbled upstream payload§ " + truncate(resp.Content, 12)
		resp.FinishReason = "length"
		return resp, nil
	}
	return c.Inner.Complete(ctx, req)
}

// streamFailAfterChunks is how many chunks an Error fault lets through
// before killing a stream — enough that the consumer has rendered partial
// output, so the mid-stream failure path (no retry, extractive fallback) is
// what gets exercised, not the pre-first-byte retry path.
const streamFailAfterChunks = 2

// CompleteStream implements llm.StreamClient. The Error fault is injected
// mid-stream: a few chunks of the real completion are emitted first, then
// the stream dies with ErrInjected — the partially-delivered answer a
// dropped upstream connection produces. Hang blocks before the first byte;
// Slow delays then streams; Malformed streams the garbled payload.
func (c *Client) CompleteStream(ctx context.Context, req llm.Request, emit func(chunk string) error) (llm.Response, error) {
	switch c.Sched.next() {
	case Error:
		emitted := 0
		_, err := llm.CompleteStream(ctx, c.Inner, req, func(chunk string) error {
			if emitted >= streamFailAfterChunks {
				return fmt.Errorf("%w (llm stream)", ErrInjected)
			}
			emitted++
			if emit == nil {
				return nil
			}
			return emit(chunk)
		})
		if err != nil {
			return llm.Response{}, err
		}
		// The completion was shorter than the failure point; kill it anyway.
		return llm.Response{}, fmt.Errorf("%w (llm stream)", ErrInjected)
	case Slow:
		select {
		case <-time.After(c.Sched.SlowLatency):
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	case Hang:
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	case Malformed:
		resp, err := c.Inner.Complete(ctx, req)
		if err != nil {
			return resp, err
		}
		resp.Content = "<<<!garbled upstream payload§ " + truncate(resp.Content, 12)
		resp.FinishReason = "length"
		if emit != nil {
			if err := emit(resp.Content); err != nil {
				return llm.Response{}, err
			}
		}
		return resp, nil
	}
	return llm.CompleteStream(ctx, c.Inner, req, emit)
}

// Embedder wraps a context-aware embedder with fault injection. It
// implements embedding.CtxEmbedder (and the Dim accessor).
type Embedder struct {
	// Inner answers the non-faulty calls.
	Inner interface {
		EmbedCtx(ctx context.Context, text string) (vector.Vector, error)
		Dim() int
	}
	// Sched drives the fault sequence.
	Sched *Schedule
}

// EmbedCtx implements embedding.CtxEmbedder.
func (e *Embedder) EmbedCtx(ctx context.Context, text string) (vector.Vector, error) {
	switch e.Sched.next() {
	case Error:
		return nil, fmt.Errorf("%w (embedding)", ErrInjected)
	case Slow:
		select {
		case <-time.After(e.Sched.SlowLatency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	case Hang:
		<-ctx.Done()
		return nil, ctx.Err()
	case Malformed:
		v, err := e.Inner.EmbedCtx(ctx, text)
		if err != nil {
			return nil, err
		}
		if len(v) > 1 {
			v = v[:len(v)/2] // wrong dimensionality: the resilient wrapper must catch it
		}
		return v, nil
	}
	return e.Inner.EmbedCtx(ctx, text)
}

// Dim implements embedding.CtxEmbedder.
func (e *Embedder) Dim() int { return e.Inner.Dim() }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
