package faulty

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"uniask/internal/embedding"
	"uniask/internal/llm"
)

func drawKinds(s *Schedule, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = s.next()
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	a := drawKinds(NewSchedule(7, 0.3, 0.1, 0.1, 0.1), 50)
	b := drawKinds(NewSchedule(7, 0.3, 0.1, 0.1, 0.1), 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault sequences")
	}
	c := drawKinds(NewSchedule(8, 0.3, 0.1, 0.1, 0.1), 50)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical fault sequences")
	}
}

func TestScheduleRates(t *testing.T) {
	s := NewSchedule(1, 0.3, 0, 0.1, 0)
	n := 5000
	drawKinds(s, n)
	counts := s.Counts()
	if got := float64(counts[Error]) / float64(n); got < 0.25 || got > 0.35 {
		t.Fatalf("error rate = %.3f, want ≈0.30", got)
	}
	if got := float64(counts[Hang]) / float64(n); got < 0.07 || got > 0.13 {
		t.Fatalf("hang rate = %.3f, want ≈0.10", got)
	}
	if s.Calls() != n {
		t.Fatalf("calls = %d", s.Calls())
	}
}

func TestScriptThenOK(t *testing.T) {
	s := Script(Error, Hang)
	got := drawKinds(s, 4)
	want := []Kind{Error, Hang, OK, OK}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("script sequence = %v, want %v", got, want)
	}
}

func TestClientFaults(t *testing.T) {
	inner := llm.NewSim(llm.DefaultBehavior())
	req := llm.Request{Messages: []llm.Message{{Role: llm.User, Content: "Riassumi: la carta si blocca dal portale."}}}

	c := &Client{Inner: inner, Sched: Script(Error)}
	if _, err := c.Complete(context.Background(), req); !errors.Is(err, ErrInjected) {
		t.Fatalf("error fault: %v", err)
	}

	// Hang blocks until the context is cancelled.
	c = &Client{Inner: inner, Sched: Script(Hang)}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Complete(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang fault: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatalf("hang returned before ctx cancellation")
	}

	// Malformed still succeeds but with corrupted content.
	c = &Client{Inner: inner, Sched: Script(Malformed)}
	resp, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("malformed fault errored: %v", err)
	}
	if resp.FinishReason != "length" || resp.Content == "" {
		t.Fatalf("malformed response = %+v", resp)
	}

	// OK passes through.
	c = &Client{Inner: inner, Sched: Script()}
	if _, err := c.Complete(context.Background(), req); err != nil {
		t.Fatalf("ok fault: %v", err)
	}
}

func TestEmbedderFaults(t *testing.T) {
	inner := embedding.AsCtx(embedding.NewSynth(32, nil))
	e := &Embedder{Inner: inner, Sched: Script(Error, Malformed, OK)}

	if _, err := e.EmbedCtx(context.Background(), "carta di credito"); !errors.Is(err, ErrInjected) {
		t.Fatalf("error fault: %v", err)
	}
	v, err := e.EmbedCtx(context.Background(), "carta di credito")
	if err != nil {
		t.Fatalf("malformed fault errored: %v", err)
	}
	if len(v) == e.Dim() {
		t.Fatalf("malformed fault returned a well-formed vector (dim %d)", len(v))
	}
	v, err = e.EmbedCtx(context.Background(), "carta di credito")
	if err != nil || len(v) != e.Dim() {
		t.Fatalf("ok call = %d dims, %v", len(v), err)
	}
}
