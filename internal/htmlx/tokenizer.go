// Package htmlx implements the minimal HTML processing UniAsk's ingestion
// service needs: a tokenizer, entity decoding, and a document extractor that
// yields the title and the paragraph structure of an intranet page. The
// paragraph start offsets it reports are the splitting points the ad-hoc
// chunking strategy of the paper uses.
package htmlx

import (
	"strings"
)

// TokenType classifies an HTML token.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is an opening tag such as <p class="x">.
	StartTagToken
	// EndTagToken is a closing tag such as </p>.
	EndTagToken
	// SelfClosingToken is a self-closed tag such as <br/>.
	SelfClosingToken
	// CommentToken is an HTML comment.
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
)

// HTMLToken is a single token produced by the tokenizer.
type HTMLToken struct {
	Type TokenType
	// Name is the lower-cased tag name (empty for text/comment tokens).
	Name string
	// Data is the raw text for text/comment tokens.
	Data string
	// Attrs holds attribute key/value pairs for tag tokens.
	Attrs map[string]string
	// Start is the byte offset of the token in the input document.
	Start int
}

// Tokenize scans an HTML document into a token stream. It is tolerant of
// malformed markup: an unterminated tag is treated as text, unknown entities
// pass through verbatim.
func Tokenize(doc string) []HTMLToken {
	var tokens []HTMLToken
	i := 0
	n := len(doc)
	for i < n {
		if doc[i] != '<' {
			// Text run up to the next '<'.
			j := strings.IndexByte(doc[i:], '<')
			if j < 0 {
				j = n - i
			}
			tokens = append(tokens, HTMLToken{Type: TextToken, Data: doc[i : i+j], Start: i})
			i += j
			continue
		}
		// Comment.
		if strings.HasPrefix(doc[i:], "<!--") {
			end := strings.Index(doc[i+4:], "-->")
			if end < 0 {
				tokens = append(tokens, HTMLToken{Type: CommentToken, Data: doc[i+4:], Start: i})
				break
			}
			tokens = append(tokens, HTMLToken{Type: CommentToken, Data: doc[i+4 : i+4+end], Start: i})
			i += 4 + end + 3
			continue
		}
		// Doctype or other declaration.
		if strings.HasPrefix(doc[i:], "<!") {
			end := strings.IndexByte(doc[i:], '>')
			if end < 0 {
				break
			}
			tokens = append(tokens, HTMLToken{Type: DoctypeToken, Data: doc[i+2 : i+end], Start: i})
			i += end + 1
			continue
		}
		end := strings.IndexByte(doc[i:], '>')
		if end < 0 {
			// Unterminated tag: treat the rest as text.
			tokens = append(tokens, HTMLToken{Type: TextToken, Data: doc[i:], Start: i})
			break
		}
		raw := doc[i+1 : i+end]
		tokType := StartTagToken
		if strings.HasPrefix(raw, "/") {
			tokType = EndTagToken
			raw = raw[1:]
		} else if strings.HasSuffix(raw, "/") {
			tokType = SelfClosingToken
			raw = strings.TrimSuffix(raw, "/")
		}
		name, attrs := parseTag(raw)
		if name == "" {
			// "< >" or similar garbage: keep as text.
			tokens = append(tokens, HTMLToken{Type: TextToken, Data: doc[i : i+end+1], Start: i})
		} else {
			tokens = append(tokens, HTMLToken{Type: tokType, Name: name, Attrs: attrs, Start: i})
		}
		i += end + 1

		// Raw-text elements: script and style content is consumed as-is up
		// to the matching end tag and discarded from extraction later.
		if tokType == StartTagToken && (name == "script" || name == "style") {
			closing := "</" + name
			idx := strings.Index(strings.ToLower(doc[i:]), closing)
			if idx < 0 {
				break
			}
			tokens = append(tokens, HTMLToken{Type: TextToken, Data: doc[i : i+idx], Start: i})
			i += idx
		}
	}
	return tokens
}

// parseTag splits a raw tag body into name and attributes.
func parseTag(raw string) (string, map[string]string) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", nil
	}
	nameEnd := len(raw)
	for k := 0; k < len(raw); k++ {
		if raw[k] == ' ' || raw[k] == '\t' || raw[k] == '\n' || raw[k] == '\r' {
			nameEnd = k
			break
		}
	}
	name := strings.ToLower(raw[:nameEnd])
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-') {
			return "", nil
		}
	}
	rest := strings.TrimSpace(raw[nameEnd:])
	if rest == "" {
		return name, nil
	}
	attrs := make(map[string]string)
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		sp := strings.IndexByte(rest, ' ')
		if eq < 0 || (sp >= 0 && sp < eq) {
			// Bare attribute.
			var key string
			if sp < 0 {
				key, rest = rest, ""
			} else {
				key, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
			}
			if key != "" {
				attrs[strings.ToLower(key)] = ""
			}
			continue
		}
		key := strings.ToLower(strings.TrimSpace(rest[:eq]))
		rest = strings.TrimSpace(rest[eq+1:])
		var val string
		if len(rest) > 0 && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			endQ := strings.IndexByte(rest[1:], q)
			if endQ < 0 {
				val, rest = rest[1:], ""
			} else {
				val, rest = rest[1:1+endQ], strings.TrimSpace(rest[1+endQ+1:])
			}
		} else {
			sp = strings.IndexByte(rest, ' ')
			if sp < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
			}
		}
		if key != "" {
			attrs[key] = DecodeEntities(val)
		}
	}
	return name, attrs
}

// entityTable maps the named entities that occur in intranet HTML exports.
var entityTable = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "agrave": "à", "egrave": "è", "eacute": "é",
	"igrave": "ì", "ograve": "ò", "ugrave": "ù", "Agrave": "À",
	"Egrave": "È", "deg": "°", "euro": "€", "laquo": "«", "raquo": "»",
	"rsquo": "’", "lsquo": "‘", "ldquo": "“", "rdquo": "”", "hellip": "…",
	"ndash": "–", "mdash": "—",
}

// DecodeEntities resolves named and numeric character references in s.
// Unknown references are left verbatim.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if strings.HasPrefix(ent, "#") {
			code := 0
			ok := true
			digits := ent[1:]
			base := 10
			if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
				base = 16
				digits = digits[1:]
			}
			for _, c := range digits {
				var d int
				switch {
				case c >= '0' && c <= '9':
					d = int(c - '0')
				case base == 16 && c >= 'a' && c <= 'f':
					d = int(c-'a') + 10
				case base == 16 && c >= 'A' && c <= 'F':
					d = int(c-'A') + 10
				default:
					ok = false
				}
				if !ok {
					break
				}
				code = code*base + d
			}
			if ok && code > 0 && code <= 0x10FFFF {
				b.WriteRune(rune(code))
				i += semi + 1
				continue
			}
		} else if rep, found := entityTable[ent]; found {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}
