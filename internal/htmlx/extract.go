package htmlx

import "strings"

// Paragraph is a block-level text unit extracted from an HTML page. Start is
// the byte offset of the paragraph's opening tag in the source document —
// the "start offsets of html paragraphs" the paper's ad-hoc chunker splits
// on.
type Paragraph struct {
	// Text is the concatenated, entity-decoded, whitespace-normalized text
	// content of the block.
	Text string
	// Tag is the block element that produced the paragraph (p, h1..h6, li,
	// td, div).
	Tag string
	// Start is the byte offset of the opening tag in the source HTML.
	Start int
	// Heading reports whether the block is a heading element.
	Heading bool
}

// Document is the extraction result for one HTML page.
type Document struct {
	// Title is the contents of <title>, or the first <h1> when <title> is
	// absent.
	Title string
	// Paragraphs are the block-level text units in document order.
	Paragraphs []Paragraph
	// Meta holds <meta name=... content=...> pairs.
	Meta map[string]string
}

// blockTags are the elements whose boundaries terminate a paragraph.
var blockTags = map[string]bool{
	"p": true, "h1": true, "h2": true, "h3": true, "h4": true, "h5": true,
	"h6": true, "li": true, "td": true, "th": true, "div": true,
	"section": true, "article": true, "blockquote": true, "pre": true,
	"tr": true, "table": true, "ul": true, "ol": true, "br": true,
	"header": true, "footer": true, "nav": true, "main": true,
}

var headingTags = map[string]bool{
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
}

// skipContent marks elements whose text content is never extracted.
var skipContent = map[string]bool{"script": true, "style": true, "noscript": true}

// Extract parses an HTML document and returns its title and paragraphs.
func Extract(doc string) Document {
	tokens := Tokenize(doc)
	out := Document{Meta: make(map[string]string)}

	var (
		cur        strings.Builder
		curTag     = "p"
		curStart   = 0
		started    = false
		inTitle    bool
		inSkip     int
		titleBuf   strings.Builder
		curHeading bool
	)
	flush := func() {
		text := NormalizeSpace(DecodeEntities(cur.String()))
		if text != "" {
			out.Paragraphs = append(out.Paragraphs, Paragraph{
				Text: text, Tag: curTag, Start: curStart, Heading: curHeading,
			})
		}
		cur.Reset()
		started = false
		curHeading = false
	}
	for _, tok := range tokens {
		switch tok.Type {
		case StartTagToken, SelfClosingToken:
			if skipContent[tok.Name] {
				if tok.Type == StartTagToken {
					inSkip++
				}
				continue
			}
			if tok.Name == "title" {
				inTitle = true
				continue
			}
			if tok.Name == "meta" {
				if name, ok := tok.Attrs["name"]; ok {
					out.Meta[strings.ToLower(name)] = tok.Attrs["content"]
				}
				continue
			}
			if blockTags[tok.Name] {
				flush()
				curTag = tok.Name
				curStart = tok.Start
				curHeading = headingTags[tok.Name]
				started = true
			}
		case EndTagToken:
			if skipContent[tok.Name] {
				if inSkip > 0 {
					inSkip--
				}
				continue
			}
			if tok.Name == "title" {
				inTitle = false
				continue
			}
			if blockTags[tok.Name] {
				flush()
			}
		case TextToken:
			if inSkip > 0 {
				continue
			}
			if inTitle {
				titleBuf.WriteString(tok.Data)
				continue
			}
			if !started {
				curStart = tok.Start
				started = true
			}
			cur.WriteString(tok.Data)
			cur.WriteByte(' ')
		}
	}
	flush()

	out.Title = NormalizeSpace(DecodeEntities(titleBuf.String()))
	if out.Title == "" {
		for _, p := range out.Paragraphs {
			if p.Heading {
				out.Title = p.Text
				break
			}
		}
	}
	return out
}

// Text returns the full extracted body text of the document, paragraphs
// joined by newlines.
func (d Document) Text() string {
	parts := make([]string, len(d.Paragraphs))
	for i, p := range d.Paragraphs {
		parts[i] = p.Text
	}
	return strings.Join(parts, "\n")
}

// BodyParagraphs returns the non-heading paragraphs.
func (d Document) BodyParagraphs() []Paragraph {
	var out []Paragraph
	for _, p := range d.Paragraphs {
		if !p.Heading {
			out = append(out, p)
		}
	}
	return out
}

// NormalizeSpace collapses runs of whitespace to single spaces and trims.
func NormalizeSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ' ' {
			if !space {
				b.WriteByte(' ')
				space = true
			}
			continue
		}
		b.WriteRune(r)
		space = false
	}
	return strings.TrimRight(b.String(), " ")
}
