package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html><head><title>Blocco carta di credito</title>
<meta name="domain" content="prodotti">
<style>.x{color:red}</style>
<script>var a = "<p>not text</p>";</script>
</head>
<body>
<h1>Blocco carta</h1>
<p>Per bloccare la carta chiamare il numero verde.</p>
<p>In caso di furto aprire una segnalazione &egrave; obbligatorio.</p>
<ul><li>Passo uno</li><li>Passo due</li></ul>
<!-- commento interno -->
<div>Nota finale &amp; contatti.</div>
</body></html>`

func TestExtractTitle(t *testing.T) {
	d := Extract(samplePage)
	if d.Title != "Blocco carta di credito" {
		t.Fatalf("Title = %q", d.Title)
	}
}

func TestExtractMeta(t *testing.T) {
	d := Extract(samplePage)
	if d.Meta["domain"] != "prodotti" {
		t.Fatalf("Meta = %v", d.Meta)
	}
}

func TestExtractParagraphs(t *testing.T) {
	d := Extract(samplePage)
	texts := make([]string, len(d.Paragraphs))
	for i, p := range d.Paragraphs {
		texts[i] = p.Text
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{
		"Blocco carta",
		"Per bloccare la carta chiamare il numero verde.",
		"In caso di furto aprire una segnalazione è obbligatorio.",
		"Passo uno", "Passo due",
		"Nota finale & contatti.",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("paragraphs missing %q in %q", want, joined)
		}
	}
	if strings.Contains(joined, "not text") {
		t.Errorf("script content leaked: %q", joined)
	}
	if strings.Contains(joined, "commento") {
		t.Errorf("comment content leaked: %q", joined)
	}
	if strings.Contains(joined, "color:red") {
		t.Errorf("style content leaked: %q", joined)
	}
}

func TestExtractParagraphOffsetsIncreasing(t *testing.T) {
	d := Extract(samplePage)
	last := -1
	for _, p := range d.Paragraphs {
		if p.Start <= last {
			t.Fatalf("non-increasing start offsets: %d after %d", p.Start, last)
		}
		last = p.Start
	}
}

func TestExtractHeadingFlag(t *testing.T) {
	d := Extract(samplePage)
	var foundHeading bool
	for _, p := range d.Paragraphs {
		if p.Heading && p.Text == "Blocco carta" {
			foundHeading = true
		}
	}
	if !foundHeading {
		t.Fatal("h1 not flagged as heading")
	}
	if len(d.BodyParagraphs()) != len(d.Paragraphs)-1 {
		t.Fatalf("BodyParagraphs should drop exactly the heading")
	}
}

func TestTitleFallsBackToH1(t *testing.T) {
	d := Extract("<html><body><h1>Solo intestazione</h1><p>testo</p></body></html>")
	if d.Title != "Solo intestazione" {
		t.Fatalf("Title = %q", d.Title)
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	inputs := []string{
		"", "<", "<p", "<>", "< >", "<p><b>unclosed",
		"testo senza tag", "<p>a<p>b", "<script>never closed",
		"&#x;&#;&unknown; testo", "<!---->", "<!-- unterminated",
		"<p attr='unterminated>x</p>",
	}
	for _, in := range inputs {
		d := Extract(in) // must not panic
		_ = d.Text()
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":       "a & b",
		"perch&egrave;":   "perchè",
		"&#65;&#x42;":     "AB",
		"&unknown; resta": "&unknown; resta",
		"100&euro;":       "100€",
		"&":               "&",
		"a&amp":           "a&amp",
		"&lt;p&gt;":       "<p>",
		"&nbsp;spazio":    " spazio",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeSpace(t *testing.T) {
	if got := NormalizeSpace("  a \n\t b  c  "); got != "a b c" {
		t.Fatalf("NormalizeSpace = %q", got)
	}
}

func TestTokenizeAttrs(t *testing.T) {
	toks := Tokenize(`<a href="x.html" class='c' disabled>link</a>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Attrs["href"] != "x.html" || toks[0].Attrs["class"] != "c" {
		t.Fatalf("attrs = %v", toks[0].Attrs)
	}
	if _, ok := toks[0].Attrs["disabled"]; !ok {
		t.Fatalf("bare attribute lost: %v", toks[0].Attrs)
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize("<br/><img src='x'/>")
	if toks[0].Type != SelfClosingToken || toks[0].Name != "br" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != SelfClosingToken || toks[1].Name != "img" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
}

// Property: Extract never panics and all paragraph offsets are in range.
func TestExtractProperty(t *testing.T) {
	f := func(s string) bool {
		d := Extract(s)
		for _, p := range d.Paragraphs {
			if p.Start < 0 || p.Start > len(s) {
				return false
			}
			if p.Text == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeEntities is identity on entity-free ASCII strings.
func TestDecodeEntitiesIdentityProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.ReplaceAll(s, "&", "")
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
