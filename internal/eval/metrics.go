// Package eval implements the retrieval-evaluation machinery of §7:
// precision@n, recall@n, binary hit rate@n and MRR over query datasets with
// ground-truth document sets, aggregate summaries under the paper's
// averaging conventions, and percentage-variation reporting for the
// ablation tables.
package eval

// Metrics holds the retrieval metrics at the cutoffs the paper reports.
type Metrics struct {
	P1, P4, P50     float64
	R1, R4, R50     float64
	Hit1, Hit4, H50 float64
	MRR             float64
}

// PrecisionAtN is |relevant ∩ top-n| / n. The paper divides by the cutoff
// n, not by the returned count — a system returning fewer than n documents
// is penalized.
func PrecisionAtN(relevant map[string]bool, ranked []string, n int) float64 {
	if n <= 0 {
		return 0
	}
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	hits := 0
	for _, id := range ranked {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// RecallAtN is |relevant ∩ top-n| / |relevant|.
func RecallAtN(relevant map[string]bool, ranked []string, n int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	hits := 0
	for _, id := range ranked {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// HitAtN is 1 when the top n contain at least one relevant document.
func HitAtN(relevant map[string]bool, ranked []string, n int) float64 {
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	for _, id := range ranked {
		if relevant[id] {
			return 1
		}
	}
	return 0
}

// ReciprocalRank is 1/rank of the first relevant document (0 when none
// appears).
func ReciprocalRank(relevant map[string]bool, ranked []string) float64 {
	for i, id := range ranked {
		if relevant[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Compute evaluates one query's ranking at all the paper's cutoffs.
func Compute(relevant map[string]bool, ranked []string) Metrics {
	return Metrics{
		P1:   PrecisionAtN(relevant, ranked, 1),
		P4:   PrecisionAtN(relevant, ranked, 4),
		P50:  PrecisionAtN(relevant, ranked, 50),
		R1:   RecallAtN(relevant, ranked, 1),
		R4:   RecallAtN(relevant, ranked, 4),
		R50:  RecallAtN(relevant, ranked, 50),
		Hit1: HitAtN(relevant, ranked, 1),
		Hit4: HitAtN(relevant, ranked, 4),
		H50:  HitAtN(relevant, ranked, 50),
		MRR:  ReciprocalRank(relevant, ranked),
	}
}

// add accumulates o into m.
func (m *Metrics) add(o Metrics) {
	m.P1 += o.P1
	m.P4 += o.P4
	m.P50 += o.P50
	m.R1 += o.R1
	m.R4 += o.R4
	m.R50 += o.R50
	m.Hit1 += o.Hit1
	m.Hit4 += o.Hit4
	m.H50 += o.H50
	m.MRR += o.MRR
}

// scale divides every metric by n.
func (m *Metrics) scale(n float64) {
	if n == 0 {
		return
	}
	m.P1 /= n
	m.P4 /= n
	m.P50 /= n
	m.R1 /= n
	m.R4 /= n
	m.R50 /= n
	m.Hit1 /= n
	m.Hit4 /= n
	m.H50 /= n
	m.MRR /= n
}

// Summary aggregates a dataset evaluation.
type Summary struct {
	// Queries is the dataset size; Answered counts queries with a
	// non-empty result list.
	Queries, Answered int
	// OverAnswered averages metrics over answered queries only — the
	// convention the paper states for Table 1 ("averages on the questions
	// for which a non-empty document list was obtained").
	OverAnswered Metrics
	// OverAll averages over every query, counting unanswered ones as zero.
	OverAll Metrics
}

// AnsweredRate is the fraction of queries with non-empty results (the
// paper's 19.1% vs 100% comparison).
func (s Summary) AnsweredRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Answered) / float64(s.Queries)
}

// PercentVar returns 100*(v-base)/base, the "% Var" columns of Tables 1-4
// (0 when base is 0).
func PercentVar(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}

// VarTable computes the per-metric percentage variation of v against base,
// using the over-all averages.
func VarTable(base, v Summary) Metrics {
	b, x := base.OverAll, v.OverAll
	return Metrics{
		P1:   PercentVar(b.P1, x.P1),
		P4:   PercentVar(b.P4, x.P4),
		P50:  PercentVar(b.P50, x.P50),
		R1:   PercentVar(b.R1, x.R1),
		R4:   PercentVar(b.R4, x.R4),
		R50:  PercentVar(b.R50, x.R50),
		Hit1: PercentVar(b.Hit1, x.Hit1),
		Hit4: PercentVar(b.Hit4, x.Hit4),
		H50:  PercentVar(b.H50, x.H50),
		MRR:  PercentVar(b.MRR, x.MRR),
	}
}
