package eval

import "uniask/internal/kb"

// Retriever maps a query text to a ranked list of KB document ids. Both
// UniAsk (chunk ranking collapsed to parents) and the previous engine plug
// in here.
type Retriever func(query string) []string

// Evaluate runs the retriever over every query in the dataset and
// aggregates the retrieval metrics.
func Evaluate(ds kb.Dataset, retrieve Retriever) Summary {
	var s Summary
	for _, q := range ds.Queries {
		s.Queries++
		relevant := make(map[string]bool, len(q.Relevant))
		for _, id := range q.Relevant {
			relevant[id] = true
		}
		ranked := retrieve(q.Text)
		m := Compute(relevant, ranked)
		s.OverAll.add(m)
		if len(ranked) > 0 {
			s.Answered++
			s.OverAnswered.add(m)
		}
	}
	s.OverAll.scale(float64(s.Queries))
	s.OverAnswered.scale(float64(s.Answered))
	return s
}

// MetricNames lists the metric labels in the row order of Table 1.
var MetricNames = []string{"p@1", "p@4", "p@50", "r@1", "r@4", "r@50", "hit@1", "hit@4", "hit@50", "MRR"}

// Values returns the metrics in MetricNames order.
func (m Metrics) Values() []float64 {
	return []float64{m.P1, m.P4, m.P50, m.R1, m.R4, m.R50, m.Hit1, m.Hit4, m.H50, m.MRR}
}

// PaperConvention merges the two averaging conventions the numbers in
// Table 1 follow: precision and hit rate averaged over answered queries,
// recall and MRR over all queries. (With a system that answers every query,
// such as UniAsk, the two conventions coincide.)
func (s Summary) PaperConvention() Metrics {
	return Metrics{
		P1: s.OverAnswered.P1, P4: s.OverAnswered.P4, P50: s.OverAnswered.P50,
		Hit1: s.OverAnswered.Hit1, Hit4: s.OverAnswered.Hit4, H50: s.OverAnswered.H50,
		R1: s.OverAll.R1, R4: s.OverAll.R4, R50: s.OverAll.R50,
		MRR: s.OverAll.MRR,
	}
}
