package eval

import (
	"math"
	"testing"

	"uniask/internal/kb"
)

func rel(ids ...string) map[string]bool {
	m := make(map[string]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPrecisionAtN(t *testing.T) {
	r := rel("a", "b")
	ranked := []string{"a", "x", "b", "y"}
	if got := PrecisionAtN(r, ranked, 1); !almost(got, 1) {
		t.Fatalf("p@1 = %v", got)
	}
	if got := PrecisionAtN(r, ranked, 4); !almost(got, 0.5) {
		t.Fatalf("p@4 = %v", got)
	}
	// Divides by the cutoff even when fewer results are returned.
	if got := PrecisionAtN(r, []string{"a"}, 4); !almost(got, 0.25) {
		t.Fatalf("p@4 short list = %v", got)
	}
	if got := PrecisionAtN(r, ranked, 0); got != 0 {
		t.Fatalf("p@0 = %v", got)
	}
}

func TestRecallAtN(t *testing.T) {
	r := rel("a", "b", "c", "d")
	ranked := []string{"a", "x", "b"}
	if got := RecallAtN(r, ranked, 3); !almost(got, 0.5) {
		t.Fatalf("r@3 = %v", got)
	}
	if got := RecallAtN(r, ranked, 1); !almost(got, 0.25) {
		t.Fatalf("r@1 = %v", got)
	}
	if got := RecallAtN(map[string]bool{}, ranked, 3); got != 0 {
		t.Fatalf("recall with empty truth = %v", got)
	}
}

func TestHitAtN(t *testing.T) {
	r := rel("z")
	if got := HitAtN(r, []string{"a", "b", "z"}, 2); got != 0 {
		t.Fatalf("hit@2 = %v", got)
	}
	if got := HitAtN(r, []string{"a", "b", "z"}, 3); got != 1 {
		t.Fatalf("hit@3 = %v", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	r := rel("z")
	if got := ReciprocalRank(r, []string{"a", "z"}); !almost(got, 0.5) {
		t.Fatalf("rr = %v", got)
	}
	if got := ReciprocalRank(r, []string{"a", "b"}); got != 0 {
		t.Fatalf("rr no hit = %v", got)
	}
	if got := ReciprocalRank(r, nil); got != 0 {
		t.Fatalf("rr empty = %v", got)
	}
}

func TestComputeConsistency(t *testing.T) {
	r := rel("a")
	m := Compute(r, []string{"a"})
	// With a single relevant doc at rank 1: p@1=r@1=hit@1=MRR=1.
	if !almost(m.P1, 1) || !almost(m.R1, 1) || !almost(m.Hit1, 1) || !almost(m.MRR, 1) {
		t.Fatalf("m = %+v", m)
	}
	// p@4 penalizes the short list: 1/4.
	if !almost(m.P4, 0.25) {
		t.Fatalf("p@4 = %v", m.P4)
	}
}

func TestEvaluateAveragingConventions(t *testing.T) {
	ds := kb.Dataset{Queries: []kb.Query{
		{ID: "q1", Text: "answered", Relevant: []string{"a"}},
		{ID: "q2", Text: "unanswered", Relevant: []string{"b"}},
	}}
	retr := func(q string) []string {
		if q == "answered" {
			return []string{"a"}
		}
		return nil
	}
	s := Evaluate(ds, retr)
	if s.Queries != 2 || s.Answered != 1 {
		t.Fatalf("counts = %d/%d", s.Queries, s.Answered)
	}
	if !almost(s.AnsweredRate(), 0.5) {
		t.Fatalf("answered rate = %v", s.AnsweredRate())
	}
	// Over answered: the one answered query scored p@1 = 1.
	if !almost(s.OverAnswered.P1, 1) {
		t.Fatalf("over-answered p@1 = %v", s.OverAnswered.P1)
	}
	// Over all: averaged with the zero for the unanswered query.
	if !almost(s.OverAll.P1, 0.5) {
		t.Fatalf("over-all p@1 = %v", s.OverAll.P1)
	}
	// Paper convention mixes the two.
	pc := s.PaperConvention()
	if !almost(pc.P1, 1) || !almost(pc.MRR, 0.5) {
		t.Fatalf("paper convention = %+v", pc)
	}
}

func TestPercentVar(t *testing.T) {
	if got := PercentVar(0.5, 1.0); !almost(got, 100) {
		t.Fatalf("PercentVar = %v", got)
	}
	if got := PercentVar(1.0, 0.9); !almost(got, -10) {
		t.Fatalf("PercentVar = %v", got)
	}
	if got := PercentVar(0, 5); got != 0 {
		t.Fatalf("PercentVar base 0 = %v", got)
	}
}

func TestVarTable(t *testing.T) {
	base := Summary{OverAll: Metrics{P1: 0.5, MRR: 0.4}}
	v := Summary{OverAll: Metrics{P1: 0.25, MRR: 0.6}}
	vt := VarTable(base, v)
	if !almost(vt.P1, -50) || !almost(vt.MRR, 50) {
		t.Fatalf("VarTable = %+v", vt)
	}
}

func TestMetricsValuesOrder(t *testing.T) {
	m := Metrics{P1: 1, P4: 2, P50: 3, R1: 4, R4: 5, R50: 6, Hit1: 7, Hit4: 8, H50: 9, MRR: 10}
	vals := m.Values()
	if len(vals) != len(MetricNames) {
		t.Fatalf("len mismatch: %d vs %d", len(vals), len(MetricNames))
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if vals[i] != want {
			t.Fatalf("Values[%d] = %v", i, vals[i])
		}
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	s := Evaluate(kb.Dataset{}, func(string) []string { return nil })
	if s.Queries != 0 || s.OverAll.P1 != 0 {
		t.Fatalf("empty dataset summary = %+v", s)
	}
}
