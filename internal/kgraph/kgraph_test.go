package kgraph

import (
	"reflect"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/kb"
)

// testLexicon covers a few concepts with their stems.
func testLexicon() embedding.MapLexicon {
	return embedding.MapLexicon{
		"cart":    "card",
		"blocca":  "block",
		"bonific": "transfer",
		"ester":   "abroad",
		"mutu":    "mortgage",
		"tass":    "rate",
	}
}

func testGraph() *Graph {
	docs := []DocText{
		{ID: "d1", Text: "Per bloccare la carta chiamare il numero verde."},
		{ID: "d2", Text: "Il bonifico estero richiede il codice BIC."},
		{ID: "d3", Text: "Il mutuo prevede un tasso agevolato."},
		{ID: "d4", Text: "Bloccare la carta in caso di bonifico sospetto."},
	}
	return Build(docs, testLexicon())
}

func TestConceptsOf(t *testing.T) {
	g := testGraph()
	got := g.ConceptsOf("come bloccare la carta di credito?")
	want := []string{"block", "card"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ConceptsOf = %v, want %v", got, want)
	}
	if g.ConceptsOf("testo senza concetti bancari noti") != nil {
		t.Fatal("concepts from concept-free text")
	}
}

func TestEdgesFromCoOccurrence(t *testing.T) {
	g := testGraph()
	// block+card co-occur in d1 and d4.
	if w := g.EdgeWeight("block", "card"); w != 2 {
		t.Fatalf("w(block,card) = %d", w)
	}
	if w := g.EdgeWeight("card", "block"); w != 2 {
		t.Fatal("graph not symmetric")
	}
	// mortgage and card never co-occur.
	if w := g.EdgeWeight("mortgage", "card"); w != 0 {
		t.Fatalf("w(mortgage,card) = %d", w)
	}
}

func TestRelatedOrdering(t *testing.T) {
	g := testGraph()
	rel := g.Related("card", 10)
	if len(rel) == 0 || rel[0] != "block" {
		t.Fatalf("Related(card) = %v", rel)
	}
	if got := g.Related("card", 1); len(got) != 1 {
		t.Fatalf("Related cap failed: %v", got)
	}
	if got := g.Related("unknown", 5); len(got) != 0 {
		t.Fatalf("Related(unknown) = %v", got)
	}
}

func TestConnected(t *testing.T) {
	g := testGraph()
	if !g.Connected("block", "card", 1) {
		t.Fatal("direct edge not connected")
	}
	// transfer—abroad direct; card—abroad via transfer (d4 links card &
	// transfer; d2 links transfer & abroad) -> 2 hops.
	if g.Connected("card", "abroad", 1) {
		t.Fatal("card-abroad should not be 1-hop")
	}
	if !g.Connected("card", "abroad", 2) {
		t.Fatal("card-abroad should be 2-hop")
	}
	if g.Connected("card", "mortgage", 5) {
		t.Fatal("disconnected components reported connected")
	}
	if !g.Connected("card", "card", 0) {
		t.Fatal("self not connected")
	}
}

func TestCheckAnswerOnTopic(t *testing.T) {
	g := testGraph()
	v := g.CheckAnswer(
		"come bloccare la carta?",
		"Per bloccare la carta chiamare il numero verde.")
	if !v.OnTopic {
		t.Fatalf("grounded answer off-topic: %+v", v)
	}
}

func TestCheckAnswerDrift(t *testing.T) {
	g := testGraph()
	// The answer talks about mortgages and rates: unrelated to the card
	// question (different graph component).
	v := g.CheckAnswer(
		"come bloccare la carta?",
		"Il mutuo prevede un tasso agevolato per i giovani.")
	if v.OnTopic {
		t.Fatalf("drift answer passed: %+v", v)
	}
	if len(v.OffTopicConcepts) == 0 {
		t.Fatal("no off-topic concepts reported")
	}
}

func TestCheckAnswerBoilerplate(t *testing.T) {
	g := testGraph()
	v := g.CheckAnswer(
		"come bloccare la carta?",
		"In generale conviene rivolgersi al proprio consulente di riferimento.")
	if v.OnTopic {
		t.Fatal("concept-free boilerplate passed")
	}
}

func TestCheckAnswerAbstainsWithoutQuestionConcepts(t *testing.T) {
	g := testGraph()
	v := g.CheckAnswer("che tempo fa domani?", "Il mutuo prevede un tasso.")
	if !v.OnTopic {
		t.Fatal("check should abstain when the question has no concepts")
	}
}

func TestBuildFromGeneratedCorpus(t *testing.T) {
	corpus := kb.Generate(kb.GenConfig{Docs: 200, Seed: 6})
	var docs []DocText
	for _, d := range corpus.Docs {
		text := d.Title
		for _, p := range d.Paragraphs {
			text += " " + p
		}
		docs = append(docs, DocText{ID: d.ID, Text: text})
	}
	g := Build(docs, corpus.Lexicon())
	if g.Nodes() < 30 {
		t.Fatalf("graph too small: %d nodes", g.Nodes())
	}
	// A document's own concepts must pass the check against a question
	// built from them.
	d := corpus.Docs[0]
	v := g.CheckAnswer("Come posso "+d.Title+"?", d.AnswerSentence)
	if !v.OnTopic {
		t.Fatalf("self-answer off-topic: %+v", v)
	}
}
