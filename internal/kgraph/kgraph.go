// Package kgraph implements the knowledge-graph extension the paper lists
// as future work (§11): a concept graph built from the knowledge base that
// supports guiding and validating generation through lightweight
// ontological reasoning.
//
// Nodes are the concepts of the domain lexicon (banking entities, actions,
// facets, applications); an edge connects two concepts that co-occur in a
// document, weighted by the number of co-occurrences. The graph powers an
// ontological guardrail — an answer must stay within the conceptual
// neighborhood of the question — and related-concept suggestions.
package kgraph

import (
	"sort"
	"strings"

	"uniask/internal/embedding"
	"uniask/internal/textproc"
)

// Graph is the concept co-occurrence graph.
type Graph struct {
	// StrictPrefixes lists concept-id prefixes (e.g. "ent", "jar") whose
	// concepts identify the *subject* of a text. During CheckAnswer a
	// strict concept in the answer must match a question concept of the
	// same class or share a direct edge with one — the 1-hop rule that is
	// fine for supporting concepts (actions, facets) is too lenient for
	// subjects, because action nodes connect almost all entities.
	StrictPrefixes []string

	lex      embedding.Lexicon
	analyzer *textproc.Analyzer
	adj      map[string]map[string]int
	docFreq  map[string]int
	docs     int
}

// isStrict reports whether concept c belongs to a strict (subject) class.
func (g *Graph) isStrict(c string) bool {
	for _, p := range g.StrictPrefixes {
		if strings.HasPrefix(c, p) {
			return true
		}
	}
	return false
}

// DocText is one document's text handed to the builder.
type DocText struct {
	ID   string
	Text string
}

// Build constructs the graph from the corpus text using the lexicon to map
// terms to concepts.
func Build(docs []DocText, lex embedding.Lexicon) *Graph {
	g := &Graph{
		lex:      lex,
		analyzer: textproc.ItalianFull(),
		adj:      make(map[string]map[string]int),
		docFreq:  make(map[string]int),
	}
	for _, d := range docs {
		concepts := g.ConceptsOf(d.Text)
		g.docs++
		for _, c := range concepts {
			g.docFreq[c]++
		}
		for i := 0; i < len(concepts); i++ {
			for j := i + 1; j < len(concepts); j++ {
				g.addEdge(concepts[i], concepts[j])
			}
		}
	}
	return g
}

func (g *Graph) addEdge(a, b string) {
	if a == b {
		return
	}
	for _, pair := range [2][2]string{{a, b}, {b, a}} {
		m := g.adj[pair[0]]
		if m == nil {
			m = make(map[string]int)
			g.adj[pair[0]] = m
		}
		m[pair[1]]++
	}
}

// ConceptsOf extracts the distinct lexicon concepts mentioned in text, in
// first-appearance order.
func (g *Graph) ConceptsOf(text string) []string {
	seen := map[string]bool{}
	var out []string
	for _, term := range g.analyzer.AnalyzeTerms(text) {
		c, ok := g.lex.ConceptOf(term)
		if !ok || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// Nodes reports the number of concept nodes.
func (g *Graph) Nodes() int { return len(g.adj) }

// EdgeWeight returns the co-occurrence count between two concepts.
func (g *Graph) EdgeWeight(a, b string) int { return g.adj[a][b] }

// Related returns up to n concepts most strongly co-occurring with c,
// sorted by descending weight (ties by id).
func (g *Graph) Related(c string, n int) []string {
	type cw struct {
		concept string
		weight  int
	}
	var all []cw
	for other, w := range g.adj[c] {
		all = append(all, cw{other, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].weight != all[j].weight {
			return all[i].weight > all[j].weight
		}
		return all[i].concept < all[j].concept
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].concept
	}
	return out
}

// Connected reports whether b is reachable from a within maxHops edges.
func (g *Graph) Connected(a, b string, maxHops int) bool {
	if a == b {
		return true
	}
	frontier := map[string]bool{a: true}
	visited := map[string]bool{a: true}
	for hop := 0; hop < maxHops; hop++ {
		next := map[string]bool{}
		for node := range frontier {
			for neigh := range g.adj[node] {
				if neigh == b {
					return true
				}
				if !visited[neigh] {
					visited[neigh] = true
					next[neigh] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return false
}

// Verdict is the outcome of an ontological check.
type Verdict struct {
	// OnTopic reports whether the answer stays within the question's
	// conceptual neighborhood.
	OnTopic bool
	// QuestionConcepts and AnswerConcepts are the extracted concept sets.
	QuestionConcepts, AnswerConcepts []string
	// OffTopicConcepts lists answer concepts unconnected to the question.
	OffTopicConcepts []string
}

// hubThreshold marks concepts that appear in more than this fraction of
// all documents as ontological stop-concepts: they connect to everything
// ("filiale", "cliente") and carry no topical signal.
const hubThreshold = 0.2

// isHub reports whether c is a stop-concept. The absolute floor keeps
// small graphs (where every concept trivially exceeds a fraction of the
// corpus) from losing all their signal.
func (g *Graph) isHub(c string) bool {
	limit := hubThreshold * float64(g.docs)
	if limit < 3 {
		limit = 3
	}
	return float64(g.docFreq[c]) > limit
}

// contentConcepts extracts concepts and drops hubs.
func (g *Graph) contentConcepts(text string) []string {
	var out []string
	for _, c := range g.ConceptsOf(text) {
		if !g.isHub(c) {
			out = append(out, c)
		}
	}
	return out
}

// CheckAnswer performs the ontological guardrail of §11: every
// content-bearing concept in the answer must be the question's own concept
// or a direct neighbor of one. Hub concepts occurring in a large share of
// all documents are ignored — they connect to everything. Answers with no
// content concepts at all (pure boilerplate) are off-topic unless the
// question also has none.
func (g *Graph) CheckAnswer(question, answer string) Verdict {
	v := Verdict{
		QuestionConcepts: g.contentConcepts(question),
		AnswerConcepts:   g.contentConcepts(answer),
	}
	if len(v.QuestionConcepts) == 0 {
		// Nothing to anchor on; the ontological check abstains.
		v.OnTopic = true
		return v
	}
	if len(v.AnswerConcepts) == 0 {
		v.OnTopic = false
		return v
	}
	for _, ac := range v.AnswerConcepts {
		ok := false
		for _, qc := range v.QuestionConcepts {
			if ac == qc {
				ok = true
				break
			}
			if g.isStrict(ac) {
				// Subject concepts must share a direct edge with a subject
				// concept of the question.
				if g.isStrict(qc) && g.EdgeWeight(ac, qc) > 0 {
					ok = true
					break
				}
				continue
			}
			if g.Connected(qc, ac, 1) {
				ok = true
				break
			}
		}
		if !ok {
			v.OffTopicConcepts = append(v.OffTopicConcepts, ac)
		}
	}
	// Tolerate a single stray concept (documents mention ancillary
	// concepts); two or more unconnected concepts mark topic drift.
	v.OnTopic = len(v.OffTopicConcepts) <= len(v.AnswerConcepts)/3
	return v
}
