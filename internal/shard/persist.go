package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"uniask/internal/index"
)

// Sharded snapshot container. The layout is a magic prefix, a gob-encoded
// manifest, then one single-index snapshot per shard, each section
// length-prefixed so sections can be framed without trusting the gob
// decoder to stop at a boundary:
//
//	"uniask-sharded-snapshot/"            (index.ShardedSnapshotMagic)
//	u64 big-endian manifest length, manifest gob
//	per shard: u64 big-endian length, segmented snapshot (Segmented.Save)
//
// The magic is what lets index.Read reject a sharded stream with a
// descriptive error, and what lets Load accept a legacy single-file
// snapshot: a stream that does not start with the magic is decoded as a
// monolithic snapshot and its live documents are redistributed across the
// configured shards (the migration path). A container whose manifest shard
// count differs from the configured one migrates the same way. Per-shard
// sections are themselves format-sniffed on load, so PR-4 era containers
// whose sections are plain single-index snapshots still restore (each one
// is adopted as a single sealed segment).
type manifest struct {
	// Version of the container layout.
	Version int
	// Shards is the number of per-shard sections that follow.
	Shards int
	// NextSeq and Seq restore the global arrival sequence so vector-tie
	// ordering survives a save/load cycle.
	NextSeq uint64
	Seq     map[string]uint64
}

// manifestVersion is the current container layout version.
const manifestVersion = 1

// Save serializes the facade as a sharded snapshot container. Each shard is
// snapshotted under its own read lock in shard order; for a cross-shard
// consistent image, save while no writer is running (the ingestion poller
// between cycles), matching how the monolithic snapshot is operated.
func (s *Sharded) Save(w io.Writer) error {
	if _, err := io.WriteString(w, index.ShardedSnapshotMagic); err != nil {
		return fmt.Errorf("shard: write magic: %w", err)
	}
	s.seqMu.RLock()
	m := manifest{
		Version: manifestVersion,
		Shards:  len(s.shards),
		NextSeq: s.nextSeq,
		Seq:     make(map[string]uint64, len(s.seq)),
	}
	for id, sq := range s.seq {
		m.Seq[id] = sq
	}
	s.seqMu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	if err := writeSection(w, buf.Bytes()); err != nil {
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	for i, sh := range s.shards {
		buf.Reset()
		if err := sh.Save(&buf); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", i, err)
		}
		if err := writeSection(w, buf.Bytes()); err != nil {
			return fmt.Errorf("shard: write shard %d: %w", i, err)
		}
	}
	return nil
}

// writeSection writes one length-prefixed container section.
func writeSection(w io.Writer, b []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readSection frames one length-prefixed container section.
func readSection(r io.Reader) (io.Reader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return io.LimitReader(r, int64(binary.BigEndian.Uint64(hdr[:]))), nil
}

// Load restores a facade with cfg.Shards shards from either snapshot
// format:
//
//   - A sharded container with the same shard count loads each shard
//     directly (no re-analysis, HNSW graphs restored from their streams).
//   - A sharded container with a different shard count, or a legacy
//     single-file snapshot written by index.Save, is migrated: every live
//     document is re-added through the configured facade in its original
//     arrival order, which re-routes it to its new shard and rebuilds the
//     per-shard structures. Migration costs a re-index but keeps rankings
//     deterministic, because per-shard insertion order is preserved.
func Load(r io.Reader, cfg Config) (*Sharded, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	br := bufio.NewReader(r)
	magic := index.ShardedSnapshotMagic
	peek, err := br.Peek(len(magic))
	if err != nil || string(peek) != magic {
		// Legacy single-file snapshot: decode monolithically, then
		// redistribute its live documents across the configured shards.
		ix, err := index.Read(br, cfg.Index)
		if err != nil {
			return nil, fmt.Errorf("shard: load legacy single-file snapshot: %w", err)
		}
		s := New(cfg)
		if err := s.AddBulk(ix.LiveDocs()); err != nil {
			return nil, fmt.Errorf("shard: migrate legacy snapshot: %w", err)
		}
		return s, nil
	}
	if _, err := io.CopyN(io.Discard, br, int64(len(magic))); err != nil {
		return nil, fmt.Errorf("shard: read magic: %w", err)
	}
	sec, err := readSection(br)
	if err != nil {
		return nil, fmt.Errorf("shard: read manifest: %w", err)
	}
	var m manifest
	if err := gob.NewDecoder(sec).Decode(&m); err != nil {
		return nil, fmt.Errorf("shard: decode manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported container version %d (want %d)", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("shard: corrupt manifest: %d shards", m.Shards)
	}

	backends := make([]Backend, m.Shards)
	for i := range backends {
		sec, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("shard: read shard %d: %w", i, err)
		}
		// Each per-shard section is sniffed by format: new containers hold
		// one segmented snapshot per shard, PR-4 era containers hold plain
		// single-index snapshots, which ReadSegmented adopts as one sealed
		// segment apiece (no re-analysis).
		ix, err := index.ReadSegmented(sec, cfg.Index, cfg.Segment)
		if err != nil {
			return nil, fmt.Errorf("shard: restore shard %d: %w", i, err)
		}
		backends[i] = NewLocal(ix)
	}
	loaded := NewWithBackends(Config{Shards: m.Shards, Index: cfg.Index, Segment: cfg.Segment, Workers: cfg.Workers}, backends)
	loaded.nextSeq = m.NextSeq
	if m.Seq != nil {
		loaded.seq = m.Seq
	}
	if m.Shards == cfg.Shards {
		return loaded, nil
	}
	// Shard-count change: re-route every live document through a fresh
	// facade, in global arrival order so insertion-order-sensitive
	// structures (HNSW, vector tiebreaks) stay deterministic.
	docs := loaded.LiveDocs()
	seqOf := loaded.seq
	sortDocsBySeq(docs, seqOf)
	s := New(cfg)
	if err := s.AddBulk(docs); err != nil {
		return nil, fmt.Errorf("shard: migrate from %d to %d shards: %w", m.Shards, cfg.Shards, err)
	}
	return s, nil
}

// sortDocsBySeq orders docs by their recorded global arrival sequence,
// falling back to id order for documents missing one (pre-sequence
// snapshots).
func sortDocsBySeq(docs []index.Document, seq map[string]uint64) {
	sort.SliceStable(docs, func(i, j int) bool {
		si, oki := seq[docs[i].ID]
		sj, okj := seq[docs[j].ID]
		if oki && okj && si != sj {
			return si < sj
		}
		if oki != okj {
			return oki
		}
		return docs[i].ID < docs[j].ID
	})
}
