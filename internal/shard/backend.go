package shard

import (
	"context"
	"io"

	"uniask/internal/index"
	"uniask/internal/resilience"
	"uniask/internal/vector"
)

// Backend is the per-shard surface the facade drives. Two implementations
// exist: Local wraps an in-process *index.Segmented (infallible — its
// query methods never return an error), and the remote package's client and
// replica group speak the same surface over the wire, where any call can
// fail because the shard server is unreachable.
//
// The query methods carry a context for deadlines and trace propagation and
// return an error so the facade can count a shard as down and merge partial
// results instead of failing the whole query. The write methods keep the
// repository signatures: a failed remote write surfaces as an ingest error,
// exactly like a full disk would on a local shard.
type Backend interface {
	// Writes (routed by the facade's chunk-id hash).
	Add(doc index.Document) error
	AddBulk(docs []index.Document) error
	Delete(chunkID string) bool
	DeleteParent(parentID string) int
	ParentChunkIDs(parentID string) []string
	HasParent(parentID string) bool

	// Queries. CollectStats and SearchTextGlobal are the two-wave global
	// BM25 protocol; SearchText is the single-shard fast path.
	CollectStats(ctx context.Context, fields, terms []string) (index.CorpusStats, error)
	SearchText(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, error)
	SearchTextGlobal(ctx context.Context, query string, n int, opts index.TextOptions, stats *index.CorpusStats) ([]index.Hit, error)
	SearchVectorUnit(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, error)
	DocByID(id string) (index.Document, bool)

	// Staleness signals and gauges. These are read on the query hot path
	// (cache keying) and by the dashboard; implementations must keep them
	// cheap and non-blocking — the remote client serves cached last-known
	// values when the endpoint is unreachable.
	Epoch() uint64
	StatsKey() uint64
	Len() int
	LiveLen() int
	Tombstones() int
	Stats() index.Stats
	SegmentStats() index.SegmentStats

	// Lifecycle and bulk access (persistence, diagnostics, migration).
	Doc(ord int) index.Document
	LiveDocs() []index.Document
	Publish()
	WaitCompaction()
	Save(w io.Writer) error
	Close() error
}

// HealthReporter is implemented by backends that guard remote endpoints
// with circuit breakers (the remote replica group); the engine folds these
// into its /api/health breaker report.
type HealthReporter interface {
	Breakers() []resilience.BreakerStatus
}

// Local adapts an in-process segmented store to the Backend surface. The
// context-and-error query wrappers are the only additions: a local shard
// cannot be "down", so they delegate and return nil errors (a cancelled
// context is honored before the call, matching the remote client's
// behavior of not issuing RPCs for dead requests).
type Local struct {
	*index.Segmented
}

// NewLocal wraps a segmented store as a shard backend.
func NewLocal(s *index.Segmented) *Local { return &Local{Segmented: s} }

var _ Backend = (*Local)(nil)

// Segmented exposes the wrapped store (tests and diagnostics).
func (l *Local) Store() *index.Segmented { return l.Segmented }

// CollectStats implements Backend.
func (l *Local) CollectStats(ctx context.Context, fields, terms []string) (index.CorpusStats, error) {
	if err := ctx.Err(); err != nil {
		return index.CorpusStats{}, err
	}
	return l.Segmented.CollectStats(fields, terms), nil
}

// SearchText implements Backend.
func (l *Local) SearchText(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Segmented.SearchText(query, n, opts), nil
}

// SearchTextGlobal implements Backend.
func (l *Local) SearchTextGlobal(ctx context.Context, query string, n int, opts index.TextOptions, stats *index.CorpusStats) ([]index.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Segmented.SearchTextGlobal(query, n, opts, stats), nil
}

// SearchVectorUnit implements Backend.
func (l *Local) SearchVectorUnit(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Segmented.SearchVectorUnit(field, q, k, filters), nil
}

// Close implements Backend (a local shard holds no connections).
func (l *Local) Close() error { return nil }
