package shard_test

import (
	"fmt"
	"testing"

	"uniask/internal/index"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// doc builds a minimal chunk document.
func doc(id, parent, title, content string) index.Document {
	return index.Document{
		ID:       id,
		ParentID: parent,
		Fields:   map[string]string{"title": title, "content": content},
	}
}

// fill adds n synthetic chunks (two chunks per parent) and returns their ids.
func fill(t *testing.T, s *shard.Sharded, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("doc%03d#%d", i/2, i%2)
		parent := fmt.Sprintf("doc%03d", i/2)
		if err := s.Add(doc(id, parent, fmt.Sprintf("titolo %d", i), fmt.Sprintf("contenuto numero %d carta", i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestRoutingIsStableAndExhaustive(t *testing.T) {
	s := shard.New(shard.Config{Shards: 4})
	ids := fill(t, s, 40)
	perShard := 0
	for i := 0; i < s.NumShards(); i++ {
		perShard += s.Shard(i).Len()
	}
	if perShard != len(ids) || s.Len() != len(ids) {
		t.Fatalf("shards hold %d docs, facade says %d, want %d", perShard, s.Len(), len(ids))
	}
	for _, id := range ids {
		want := s.ShardFor(id)
		if got := s.ShardFor(id); got != want {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", id, want, got)
		}
		if _, ok := s.Shard(want).DocByID(id); !ok {
			t.Fatalf("doc %q not on its routed shard %d", id, want)
		}
		if _, ok := s.DocByID(id); !ok {
			t.Fatalf("facade DocByID(%q) missed", id)
		}
	}
	// With 40 ids over 4 shards, FNV should not collapse onto one shard.
	occupied := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i).Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("routing collapsed onto %d shard(s)", occupied)
	}
}

func TestDeleteRoutesAndParentFansOut(t *testing.T) {
	s := shard.New(shard.Config{Shards: 4})
	ids := fill(t, s, 20)

	if !s.Delete(ids[0]) {
		t.Fatal("Delete on existing chunk returned false")
	}
	if s.Delete(ids[0]) {
		t.Fatal("second Delete on same chunk returned true")
	}
	if s.Tombstones() != 1 || s.LiveLen() != len(ids)-1 {
		t.Fatalf("tombstones=%d live=%d after one delete", s.Tombstones(), s.LiveLen())
	}

	// doc003 has two chunks which may live on different shards; the parent
	// delete must reach both.
	if !s.HasParent("doc003") {
		t.Fatal("HasParent(doc003) = false before delete")
	}
	if n := s.DeleteParent("doc003"); n != 2 {
		t.Fatalf("DeleteParent removed %d chunks, want 2", n)
	}
	if s.HasParent("doc003") {
		t.Fatal("HasParent(doc003) = true after DeleteParent")
	}
	if s.LiveLen() != len(ids)-3 {
		t.Fatalf("live=%d, want %d", s.LiveLen(), len(ids)-3)
	}
}

func TestEpochIsMonotonicAcrossShards(t *testing.T) {
	s := shard.New(shard.Config{Shards: 4})
	last := s.Epoch()
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("e%02d#0", i)
		if err := s.Add(doc(id, fmt.Sprintf("e%02d", i), "t", "c")); err != nil {
			t.Fatal(err)
		}
		if e := s.Epoch(); e <= last {
			t.Fatalf("epoch %d did not advance past %d after Add", e, last)
		} else {
			last = e
		}
	}
	s.Delete("e03#0")
	if e := s.Epoch(); e <= last {
		t.Fatalf("epoch %d did not advance past %d after Delete", e, last)
	}
}

func TestAddBulkMatchesSequentialAdds(t *testing.T) {
	docs := make([]index.Document, 30)
	for i := range docs {
		docs[i] = doc(fmt.Sprintf("b%03d#0", i), fmt.Sprintf("b%03d", i),
			fmt.Sprintf("titolo %d", i), fmt.Sprintf("contenuto carta %d", i))
	}
	seq := shard.New(shard.Config{Shards: 4})
	for _, d := range docs {
		if err := seq.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	bulk := shard.New(shard.Config{Shards: 4})
	if err := bulk.AddBulk(docs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a, b := seq.Shard(i).Len(), bulk.Shard(i).Len(); a != b {
			t.Fatalf("shard %d: sequential=%d bulk=%d docs", i, a, b)
		}
	}
	a := fmt.Sprintf("%#v", seq.SearchText("contenuto carta", 10, index.TextOptions{}))
	b := fmt.Sprintf("%#v", bulk.SearchText("contenuto carta", 10, index.TextOptions{}))
	if a != b {
		t.Fatalf("bulk-built facade ranks differently:\nseq:  %s\nbulk: %s", a, b)
	}
}

func TestShardStatsCountQueries(t *testing.T) {
	s := shard.New(shard.Config{Shards: 2})
	fill(t, s, 10)
	s.SearchText("contenuto carta", 5, index.TextOptions{})
	s.SearchVector("contentVector", vector.Vector{}, 5, nil) // no vector field: still counts per-shard calls
	stats := s.ShardStats()
	if len(stats) != 2 {
		t.Fatalf("ShardStats returned %d rows, want 2", len(stats))
	}
	var queries uint64
	docs := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Fatalf("row %d has Shard=%d", i, st.Shard)
		}
		queries += st.Queries
		docs += st.Docs
	}
	if queries == 0 {
		t.Fatal("no per-shard queries recorded")
	}
	if docs != 10 {
		t.Fatalf("gauge docs sum %d, want 10", docs)
	}
}

func TestSingleShardFacadeMatchesIndex(t *testing.T) {
	plain := index.New(index.Config{})
	facade := shard.New(shard.Config{Shards: 1})
	for i := 0; i < 10; i++ {
		d := doc(fmt.Sprintf("s%02d#0", i), fmt.Sprintf("s%02d", i),
			fmt.Sprintf("titolo %d", i), fmt.Sprintf("contenuto carta %d", i))
		if err := plain.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := facade.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	a := fmt.Sprintf("%#v", plain.SearchText("contenuto carta", 5, index.TextOptions{}))
	b := fmt.Sprintf("%#v", facade.SearchText("contenuto carta", 5, index.TextOptions{}))
	if a != b {
		t.Fatalf("single-shard facade diverged:\nindex:  %s\nfacade: %s", a, b)
	}
	if plain.Epoch() != facade.Epoch() {
		t.Fatalf("epochs diverged: index=%d facade=%d", plain.Epoch(), facade.Epoch())
	}
}
