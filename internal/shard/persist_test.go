package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// vecConfig gives every fixture the exhaustive vector backend so search
// parity across save/load is exact, and a titleVector/contentVector schema.
func vecConfig() index.Config {
	return index.Config{
		VectorIndex: func(string) vector.Index { return vector.NewExhaustive() },
	}
}

// fillVec populates a repository with chunks carrying text and vectors.
func fillVec(t *testing.T, w index.Writer, emb *embedding.Synth, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		title := fmt.Sprintf("titolo procedura %d", i)
		content := fmt.Sprintf("contenuto della carta numero %d con istruzioni", i)
		err := w.Add(index.Document{
			ID:       fmt.Sprintf("p%03d#%d", i/2, i%2),
			ParentID: fmt.Sprintf("p%03d", i/2),
			Fields:   map[string]string{"title": title, "content": content},
			Vectors: map[string]vector.Vector{
				"titleVector":   emb.Embed(title),
				"contentVector": emb.Embed(content),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// searchFingerprint captures a text and a vector ranking for parity checks.
// It compares ids, scores and order; Hit.Ord is excluded because it is a
// shard-local ordinal that legitimately differs across layouts (and is never
// consumed by the search layer, which keys everything on the id).
func searchFingerprint(q index.Queryable, emb *embedding.Synth) string {
	var b strings.Builder
	for _, h := range q.SearchText("contenuto carta istruzioni", 10, index.TextOptions{}) {
		fmt.Fprintf(&b, "%s=%v;", h.ID, h.Score)
	}
	b.WriteString("|")
	for _, h := range q.SearchVector("contentVector", emb.Embed("carta istruzioni"), 10, nil) {
		fmt.Fprintf(&b, "%s=%v;", h.ID, h.Score)
	}
	return b.String()
}

func TestShardedSnapshotRoundTripSameCount(t *testing.T) {
	emb := embedding.NewSynth(32, nil)
	cfg := shard.Config{Shards: 4, Index: vecConfig()}
	s := shard.New(cfg)
	fillVec(t, s, emb, 30)
	s.Delete("p002#0")
	want := searchFingerprint(s, emb)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != 4 {
		t.Fatalf("loaded %d shards, want 4", loaded.NumShards())
	}
	if loaded.LiveLen() != s.LiveLen() || loaded.Tombstones() != s.Tombstones() {
		t.Fatalf("loaded live=%d tombstones=%d, want live=%d tombstones=%d",
			loaded.LiveLen(), loaded.Tombstones(), s.LiveLen(), s.Tombstones())
	}
	if got := searchFingerprint(loaded, emb); got != want {
		t.Fatalf("round-tripped facade ranks differently\nwant: %s\ngot:  %s", want, got)
	}
}

// TestLegacySnapshotMigratesIntoFacade is the backward-compat satellite: a
// single-file snapshot written before sharding existed must load into a
// ShardCount > 1 facade by re-routing every live document.
func TestLegacySnapshotMigratesIntoFacade(t *testing.T) {
	emb := embedding.NewSynth(32, nil)
	mono := index.New(vecConfig())
	fillVec(t, mono, emb, 30)
	mono.Delete("p004#1")

	var buf bytes.Buffer
	if err := mono.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.Load(&buf, shard.Config{Shards: 4, Index: vecConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Tombstones are not migrated — only live documents travel.
	if loaded.LiveLen() != mono.LiveLen() || loaded.Tombstones() != 0 {
		t.Fatalf("migrated live=%d tombstones=%d, want live=%d tombstones=0",
			loaded.LiveLen(), loaded.Tombstones(), mono.LiveLen())
	}
	// The parity baseline is a monolithic index rebuilt from the live docs:
	// migration drops tombstones, which legitimately shifts BM25 corpus
	// statistics relative to the tombstone-carrying source.
	ref := index.New(vecConfig())
	if err := ref.AddBulk(mono.LiveDocs()); err != nil {
		t.Fatal(err)
	}
	if got, want := searchFingerprint(loaded, emb), searchFingerprint(ref, emb); got != want {
		t.Fatalf("migrated facade ranks differently from the compacted monolithic source\nwant: %s\ngot:  %s", want, got)
	}
}

// TestMonolithicLoadRejectsShardedSnapshot is the other direction: a
// monolithic index.Read must refuse a sharded container with a descriptive
// error, not decode garbage.
func TestMonolithicLoadRejectsShardedSnapshot(t *testing.T) {
	s := shard.New(shard.Config{Shards: 2, Index: vecConfig()})
	emb := embedding.NewSynth(32, nil)
	fillVec(t, s, emb, 10)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := index.Read(&buf, vecConfig())
	if !errors.Is(err, index.ErrShardedSnapshot) {
		t.Fatalf("index.Read(sharded container) err = %v, want ErrShardedSnapshot", err)
	}
	if !strings.Contains(err.Error(), "sharded snapshot") {
		t.Fatalf("error %q does not describe the problem", err)
	}
}

// TestShardCountChangeMigrates loads a 2-shard container at 4 shards: every
// document is re-routed, counts are preserved, rankings stay identical.
func TestShardCountChangeMigrates(t *testing.T) {
	emb := embedding.NewSynth(32, nil)
	s := shard.New(shard.Config{Shards: 2, Index: vecConfig()})
	fillVec(t, s, emb, 30)
	want := searchFingerprint(s, emb)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.Load(&buf, shard.Config{Shards: 4, Index: vecConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != 4 {
		t.Fatalf("loaded %d shards, want 4", loaded.NumShards())
	}
	if loaded.LiveLen() != s.LiveLen() {
		t.Fatalf("migrated live=%d, want %d", loaded.LiveLen(), s.LiveLen())
	}
	if got := searchFingerprint(loaded, emb); got != want {
		t.Fatalf("re-sharded facade ranks differently\nwant: %s\ngot:  %s", want, got)
	}
}

// TestTruncatedContainerErrors guards the framing: a container cut mid-way
// must surface an error, not a silently smaller index.
func TestTruncatedContainerErrors(t *testing.T) {
	s := shard.New(shard.Config{Shards: 2, Index: vecConfig()})
	emb := embedding.NewSynth(32, nil)
	fillVec(t, s, emb, 10)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-buf.Len()/3]
	if _, err := shard.Load(bytes.NewReader(cut), shard.Config{Shards: 2, Index: vecConfig()}); err == nil {
		t.Fatal("truncated container loaded without error")
	}
}
