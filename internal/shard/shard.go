// Package shard implements the N-way sharded index facade: documents are
// routed to shards by a stable hash of their chunk id, queries fan out to
// every shard in parallel over the pipeline.Map bounded worker pool, and
// the per-shard top-n results merge into a globally correct top-k whose
// ordering is byte-identical to a single monolithic index.
//
// Two subtleties make the parity exact rather than approximate:
//
//   - BM25 corpus statistics are global. Each text query first collects
//     every shard's document count, field lengths and term document
//     frequencies (index.CollectStats), merges them, and scores each shard
//     with the aggregate (index.SearchTextGlobal) — per-shard idf would
//     rank documents on different curves and diverge from the monolithic
//     ordering.
//   - Vector ties break on global insertion order. The exhaustive k-NN
//     backend breaks distance ties by insertion ordinal; shard-local
//     ordinals differ from monolithic ones, so the facade stamps every
//     added chunk with a global arrival sequence number and merges vector
//     candidates by (score desc, sequence asc).
//
// Shards are Backends: in-process segmented stores (Local) or network
// endpoints speaking the remote wire protocol (internal/remote), mixed
// freely behind the same facade. A remote shard can be down; the facade
// then merges the surviving shards' results and reports the outage count,
// which the search layer surfaces as a Degradation — partial results, not
// an error.
//
// A facade with Shards == 1 delegates straight to its single shard and is
// observationally identical to using *index.Index directly.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uniask/internal/index"
	"uniask/internal/pipeline"
	"uniask/internal/resilience"
	"uniask/internal/textproc"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// Config controls facade construction.
type Config struct {
	// Shards is the number of index shards; values < 1 mean 1.
	Shards int
	// Index configures each shard identically (schema, analyzer, BM25
	// params, vector-index constructor).
	Index index.Config
	// Segment tunes each shard's segmented write path (memtable bound,
	// compaction fan-in).
	Segment index.SegmentConfig
	// Workers bounds the query fan-out concurrency; 0 means one worker per
	// CPU (pipeline.DefaultWorkers).
	Workers int
}

// queryStat accumulates one shard's query-side gauge counters.
type queryStat struct {
	queries atomic.Uint64
	nanos   atomic.Uint64
	errors  atomic.Uint64
}

// Sharded is the N-way sharded index facade. It satisfies the same
// index.Repository surface as *index.Index, so the search, ingestion and
// persistence layers run unchanged on top of it.
//
// Concurrency matches the monolithic index: any number of concurrent
// readers racing a single live writer. Each shard has its own lock domain
// (an RWMutex for local shards, a connection pool for remote ones), so
// readers of different shards never contend; the facade itself only guards
// the global sequence map.
type Sharded struct {
	cfg    Config
	shards []Backend

	// tmpl is an empty index built from cfg.Index whose only job is to
	// answer schema/analyzer questions without a round trip: the schema and
	// analyzer are configuration, identical on every shard by construction,
	// so the facade answers locally even when every shard is remote.
	tmpl *index.Index

	// seqMu guards seq/nextSeq. seq maps a chunk id to its global arrival
	// sequence — the cross-shard equivalent of the monolithic insertion
	// ordinal, used to break vector-distance ties exactly like a single
	// index would.
	seqMu   sync.RWMutex
	seq     map[string]uint64
	nextSeq uint64

	// journal aggregates the shards' deletes into one stream so the query
	// cache keeps a single cursor against the facade (see index.Queryable).
	journal *index.DeleteJournal

	stats []queryStat
}

// New creates an empty sharded facade over in-process shards.
func New(cfg Config) *Sharded {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	backends := make([]Backend, cfg.Shards)
	for i := range backends {
		backends[i] = NewLocal(index.NewSegmented(cfg.Index, cfg.Segment))
	}
	return NewWithBackends(cfg, backends)
}

// NewWithBackends creates a facade over caller-supplied shard backends —
// in-process stores, remote clients, replicated remote groups, or any mix.
// len(backends) overrides cfg.Shards.
func NewWithBackends(cfg Config, backends []Backend) *Sharded {
	if len(backends) == 0 {
		panic("shard: NewWithBackends needs at least one backend")
	}
	cfg.Shards = len(backends)
	return &Sharded{
		cfg:     cfg,
		shards:  backends,
		tmpl:    index.New(cfg.Index),
		seq:     make(map[string]uint64),
		journal: index.NewDeleteJournal(),
		stats:   make([]queryStat, len(backends)),
	}
}

// Compile-time checks: the facade is a drop-in index.Repository with a
// publication point.
var (
	_ index.Repository = (*Sharded)(nil)
	_ index.Publisher  = (*Sharded)(nil)
)

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Backend exposes one shard's backend (diagnostics and tests).
func (s *Sharded) Backend(i int) Backend { return s.shards[i] }

// Shard exposes one shard's in-process store, or nil when the shard is
// remote (diagnostics and tests).
func (s *Sharded) Shard(i int) *index.Segmented {
	if l, ok := s.shards[i].(*Local); ok {
		return l.Segmented
	}
	return nil
}

// Close releases every backend's resources (remote connection pools; local
// shards are no-ops). The facade must not be queried after Close.
func (s *Sharded) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Breakers reports the circuit-breaker status of every remote endpoint
// guarding a shard (empty for an all-local facade). The engine folds these
// into its health report.
func (s *Sharded) Breakers() []resilience.BreakerStatus {
	var out []resilience.BreakerStatus
	seen := make(map[string]bool)
	for _, sh := range s.shards {
		hr, ok := sh.(HealthReporter)
		if !ok {
			continue
		}
		// Endpoint breakers are shared across every shard placed on that
		// endpoint; report each endpoint once.
		for _, st := range hr.Breakers() {
			if seen[st.Name] {
				continue
			}
			seen[st.Name] = true
			out = append(out, st)
		}
	}
	return out
}

// ShardFor returns the shard index owning a chunk id: FNV-1a 64 of the id
// modulo the shard count. The hash is stable across processes and
// releases, so a snapshot reloaded at the same shard count needs no
// re-routing.
func (s *Sharded) ShardFor(id string) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(len(s.shards)))
}

// assignSeq stamps id with the next global arrival sequence.
func (s *Sharded) assignSeq(id string) {
	s.seqMu.Lock()
	s.seq[id] = s.nextSeq
	s.nextSeq++
	s.seqMu.Unlock()
}

// Add routes the document to its shard. Duplicate-id detection works
// unchanged: equal ids always hash to the same shard.
func (s *Sharded) Add(doc index.Document) error {
	s.assignSeq(doc.ID)
	return s.shards[s.ShardFor(doc.ID)].Add(doc)
}

// AddBulk partitions docs by owning shard (preserving relative order, so
// each shard's insertion order — and therefore its HNSW graph — is
// deterministic) and feeds the shards in parallel. On error the index may
// be partially updated, exactly like a stopped sequential loop.
func (s *Sharded) AddBulk(docs []index.Document) error {
	if len(s.shards) == 1 {
		for _, d := range docs {
			s.assignSeq(d.ID)
		}
		return s.shards[0].AddBulk(docs)
	}
	parts := make([][]index.Document, len(s.shards))
	for _, d := range docs {
		s.assignSeq(d.ID)
		i := s.ShardFor(d.ID)
		parts[i] = append(parts[i], d)
	}
	_, err := pipeline.Map(context.Background(), s.cfg.Workers, len(s.shards),
		func(_ context.Context, i int) (struct{}, error) {
			return struct{}{}, s.shards[i].AddBulk(parts[i])
		})
	return err
}

// Delete tombstones a chunk on its owning shard and journals the id for
// precise cache eviction.
func (s *Sharded) Delete(chunkID string) bool {
	if !s.shards[s.ShardFor(chunkID)].Delete(chunkID) {
		return false
	}
	s.journal.Record(chunkID)
	return true
}

// DeleteParent tombstones every chunk of a KB document. Chunks of one
// parent hash by their own chunk ids and may live on any shard, so the
// delete fans out to all of them; every removed chunk id lands in the
// facade journal.
func (s *Sharded) DeleteParent(parentID string) int {
	n := 0
	for _, sh := range s.shards {
		ids := sh.ParentChunkIDs(parentID)
		if len(ids) == 0 {
			continue
		}
		n += sh.DeleteParent(parentID)
		for _, id := range ids {
			s.journal.Record(id)
		}
	}
	return n
}

// HasParent reports whether any shard holds a live chunk of the KB
// document.
func (s *Sharded) HasParent(parentID string) bool {
	for _, sh := range s.shards {
		if sh.HasParent(parentID) {
			return true
		}
	}
	return false
}

// Epoch returns the sum of the shard epochs. Every mutation bumps exactly
// one shard, each shard's epoch is non-decreasing, and reads are atomic, so
// the sum is monotonic and changes whenever any shard changes — the same
// staleness contract the search-layer query cache relies on with a
// monolithic index (see search.QueryCache). Remote backends serve their
// last-known epoch while unreachable, keeping the sum monotonic through an
// outage.
func (s *Sharded) Epoch() uint64 {
	var e uint64
	for _, sh := range s.shards {
		e += sh.Epoch()
	}
	return e
}

// StatsKey returns the sum of the shard stats snapshot keys. Each shard's
// key is non-decreasing and rotates only when that shard publishes new BM25
// statistics (memtable seal, tombstone-dropping compaction), so the sum
// changes exactly when some shard's published statistics change — writes
// absorbed by a memtable but not yet sealed leave it untouched, which is
// what lets cache entries survive unrelated-shard writes.
func (s *Sharded) StatsKey() uint64 {
	var k uint64
	for _, sh := range s.shards {
		k += sh.StatsKey()
	}
	return k
}

// DeletesSince drains the facade's delete journal from cursor (see
// index.Queryable).
func (s *Sharded) DeletesSince(cursor uint64) (ids []string, next uint64, ok bool) {
	return s.journal.Since(cursor)
}

// Publish seals every shard's memtable and schedules their background
// compactions — the facade-wide publication point the ingestion layer
// calls after each bulk load or poll cycle.
func (s *Sharded) Publish() {
	for _, sh := range s.shards {
		sh.Publish()
	}
}

// WaitCompaction blocks until every shard's background compactor is idle.
func (s *Sharded) WaitCompaction() {
	for _, sh := range s.shards {
		sh.WaitCompaction()
	}
}

// SegmentStats returns one segmented-store gauge snapshot per shard.
func (s *Sharded) SegmentStats() []index.SegmentStats {
	out := make([]index.SegmentStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.SegmentStats()
	}
	return out
}

// Len counts chunks ever inserted across shards, including tombstones.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// LiveLen counts live chunks across shards.
func (s *Sharded) LiveLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.LiveLen()
	}
	return n
}

// Tombstones counts tombstoned chunks across shards.
func (s *Sharded) Tombstones() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Tombstones()
	}
	return n
}

// Doc returns the document at a global ordinal, where ordinals concatenate
// the shards in order: shard 0's documents first, then shard 1's, and so
// on. The mapping is only stable between mutations; it exists for
// diagnostics and sampling, not for identifying documents — use DocByID.
func (s *Sharded) Doc(ord int) index.Document {
	for _, sh := range s.shards {
		if n := sh.Len(); ord < n {
			return sh.Doc(ord)
		} else {
			ord -= n
		}
	}
	panic(fmt.Sprintf("shard: ordinal %d out of range", ord))
}

// DocByID fetches a document from its owning shard.
func (s *Sharded) DocByID(id string) (index.Document, bool) {
	return s.shards[s.ShardFor(id)].DocByID(id)
}

// Schema returns the shared shard schema.
func (s *Sharded) Schema() index.Schema { return s.tmpl.Schema() }

// Analyzer returns the shared shard analyzer.
func (s *Sharded) Analyzer() *textproc.Analyzer { return s.tmpl.Analyzer() }

// VectorFields lists the vector fields (shared, read-only).
func (s *Sharded) VectorFields() []string { return s.tmpl.VectorFields() }

// SearchableFields lists the searchable fields (shared, read-only).
func (s *Sharded) SearchableFields() []string { return s.tmpl.SearchableFields() }

// LiveDocs concatenates the shards' live documents in shard order.
func (s *Sharded) LiveDocs() []index.Document {
	var out []index.Document
	for _, sh := range s.shards {
		out = append(out, sh.LiveDocs()...)
	}
	return out
}

// record notes one shard query for the per-shard latency gauges.
func (s *Sharded) record(shard int, start time.Time, err error) {
	s.stats[shard].queries.Add(1)
	s.stats[shard].nanos.Add(uint64(time.Since(start)))
	if err != nil {
		s.stats[shard].errors.Add(1)
	}
}

// SearchText runs a BM25 query across all shards and merges the per-shard
// top-n into the global top-n.
//
// The fan-out happens in two waves: first every shard reports its corpus
// statistics for the analyzed query terms, then every shard scores with
// the merged global statistics. Both waves run over pipeline.Map, which
// preserves task order, so the merge input — and therefore the final
// ranking under the canonical (score desc, id asc) order — is
// deterministic.
func (s *Sharded) SearchText(query string, n int, opts index.TextOptions) []index.Hit {
	return s.SearchTextCtx(context.Background(), query, n, opts)
}

// SearchTextCtx is SearchText with context propagation: on a traced request
// each shard's scoring wave emits one child "shard.search" span carrying the
// shard id and the leg kind, so a fetched trace shows the fan-out shape and
// which shard dominated the leg's latency.
func (s *Sharded) SearchTextCtx(ctx context.Context, query string, n int, opts index.TextOptions) []index.Hit {
	hits, _ := s.SearchTextPartial(ctx, query, n, opts)
	return hits
}

// SearchTextPartial is SearchTextCtx plus the outage report: the second
// return value counts shards that were unreachable and therefore absent
// from the merged ranking. Zero means the ranking is complete (and
// byte-identical to the monolithic index); a positive count means partial
// results, which the search layer reports as a Degradation. A shard that
// fails its statistics wave is excluded from the scoring wave too: scoring
// a shard against global statistics missing its own contribution would
// rank its documents on a different curve than its neighbors.
func (s *Sharded) SearchTextPartial(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, int) {
	if len(s.shards) == 1 {
		_, sp := trace.Start(ctx, "shard.search", trace.A("shard", "0"), trace.A("leg", "text"))
		start := time.Now()
		hits, err := s.shards[0].SearchText(ctx, query, n, opts)
		s.record(0, start, err)
		sp.SetError(err)
		sp.End()
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0
			}
			return nil, 1
		}
		return hits, 0
	}
	if n <= 0 {
		return nil, 0
	}
	terms := s.Analyzer().AnalyzeTerms(query)
	if len(terms) == 0 {
		return nil, 0
	}
	fields := opts.Fields
	if len(fields) == 0 {
		fields = s.SearchableFields()
	}

	type statsOutcome struct {
		cs  index.CorpusStats
		err error
	}
	down := make([]bool, len(s.shards))
	partials, err := pipeline.Map(ctx, s.cfg.Workers, len(s.shards),
		func(ctx context.Context, i int) (statsOutcome, error) {
			cs, err := s.shards[i].CollectStats(ctx, fields, terms)
			return statsOutcome{cs: cs, err: err}, nil
		})
	if err != nil {
		return nil, 0 // the caller was cancelled, not a shard outage
	}
	var global index.CorpusStats
	for i, p := range partials {
		if p.err != nil {
			down[i] = true
			continue
		}
		global.Merge(p.cs)
	}

	type hitsOutcome struct {
		hits []index.Hit
		err  error
	}
	perShard, err := pipeline.Map(ctx, s.cfg.Workers, len(s.shards),
		func(ctx context.Context, i int) (hitsOutcome, error) {
			if down[i] {
				return hitsOutcome{}, nil
			}
			_, sp := trace.Start(ctx, "shard.search", trace.A("shard", strconv.Itoa(i)), trace.A("leg", "text"))
			start := time.Now()
			hits, err := s.shards[i].SearchTextGlobal(ctx, query, n, opts, &global)
			s.record(i, start, err)
			sp.SetError(err)
			sp.End()
			return hitsOutcome{hits: hits, err: err}, nil
		})
	if err != nil {
		return nil, 0
	}
	merged := make([][]index.Hit, 0, len(perShard))
	for i, o := range perShard {
		if down[i] {
			continue
		}
		if o.err != nil {
			down[i] = true
			continue
		}
		merged = append(merged, o.hits)
	}
	outage := 0
	for i, d := range down {
		if d {
			outage++
			trace.AddEvent(ctx, "shard.down", trace.A("shard", strconv.Itoa(i)), trace.A("leg", "text"))
		}
	}
	if ctx.Err() != nil {
		// A cancelled fan-out reports transport errors on every leg it tore
		// down; those are the caller's cancellation, not shard outages.
		return nil, 0
	}
	return mergeText(merged, n), outage
}

// mergeText merges per-shard ranked hit lists into the global top-n under
// the canonical text order. Each input holds at most n hits, so a flat
// append-and-sort beats a k-way heap at the sizes involved.
func mergeText(perShard [][]index.Hit, n int) []index.Hit {
	total := 0
	for _, hits := range perShard {
		total += len(hits)
	}
	merged := make([]index.Hit, 0, total)
	for _, hits := range perShard {
		merged = append(merged, hits...)
	}
	index.SortHits(merged)
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}

// SearchVector runs an ANN query across all shards and merges the
// per-shard candidates into the global top-k. Every shard returns its own
// k best survivors; the global k best are a subset of that union. Ties in
// score break on the global arrival sequence, which reproduces the
// insertion-ordinal tiebreak of a monolithic exhaustive index.
func (s *Sharded) SearchVector(field string, q vector.Vector, k int, filters []index.Filter) []index.Hit {
	return s.SearchVectorCtx(context.Background(), field, q, k, filters)
}

// SearchVectorCtx is SearchVector with context propagation: each shard's ANN
// probe becomes a child "shard.search" span on a traced request.
func (s *Sharded) SearchVectorCtx(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) []index.Hit {
	hits, _ := s.SearchVectorPartial(ctx, field, q, k, filters)
	return hits
}

// SearchVectorPartial is SearchVectorCtx plus the outage report (see
// SearchTextPartial).
func (s *Sharded) SearchVectorPartial(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, int) {
	// Normalize once per request; every shard (and every segment part below
	// it) receives the same unit query instead of re-normalizing its own copy.
	qn := vector.Normalize(append(vector.Vector(nil), q...))
	if len(s.shards) == 1 {
		_, sp := trace.Start(ctx, "shard.search", trace.A("shard", "0"), trace.A("leg", "vector:"+field))
		start := time.Now()
		hits, err := s.shards[0].SearchVectorUnit(ctx, field, qn, k, filters)
		s.record(0, start, err)
		sp.SetError(err)
		sp.End()
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0
			}
			return nil, 1
		}
		return hits, 0
	}
	if k <= 0 {
		return nil, 0
	}
	type hitsOutcome struct {
		hits []index.Hit
		err  error
	}
	perShard, err := pipeline.Map(ctx, s.cfg.Workers, len(s.shards),
		func(ctx context.Context, i int) (hitsOutcome, error) {
			_, sp := trace.Start(ctx, "shard.search", trace.A("shard", strconv.Itoa(i)), trace.A("leg", "vector:"+field))
			start := time.Now()
			hits, err := s.shards[i].SearchVectorUnit(ctx, field, qn, k, filters)
			s.record(i, start, err)
			sp.SetError(err)
			sp.End()
			return hitsOutcome{hits: hits, err: err}, nil
		})
	if err != nil {
		return nil, 0
	}
	outage := 0
	total := 0
	for i, o := range perShard {
		if o.err != nil {
			outage++
			trace.AddEvent(ctx, "shard.down", trace.A("shard", strconv.Itoa(i)), trace.A("leg", "vector:"+field))
			continue
		}
		total += len(o.hits)
	}
	if ctx.Err() != nil {
		return nil, 0
	}
	merged := make([]index.Hit, 0, total)
	for _, o := range perShard {
		if o.err != nil {
			continue
		}
		merged = append(merged, o.hits...)
	}
	seqs := make([]uint64, len(merged))
	s.seqMu.RLock()
	for i, h := range merged {
		seqs[i] = s.seq[h.ID]
	}
	s.seqMu.RUnlock()
	sort.Sort(&bySeqTie{hits: merged, seqs: seqs})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, outage
}

// bySeqTie orders hits by score descending with ties broken by global
// arrival sequence ascending, then id ascending (ids are unique, so the
// order is total even if a sequence is missing).
type bySeqTie struct {
	hits []index.Hit
	seqs []uint64
}

func (b *bySeqTie) Len() int { return len(b.hits) }

func (b *bySeqTie) Swap(i, j int) {
	b.hits[i], b.hits[j] = b.hits[j], b.hits[i]
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
}

func (b *bySeqTie) Less(i, j int) bool {
	if b.hits[i].Score != b.hits[j].Score {
		return b.hits[i].Score > b.hits[j].Score
	}
	if b.seqs[i] != b.seqs[j] {
		return b.seqs[i] < b.seqs[j]
	}
	return b.hits[i].ID < b.hits[j].ID
}

// ShardStat is one shard's dashboard gauge row.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Stats is the shard's index gauge snapshot (docs, postings, ...).
	index.Stats
	// Queries counts per-shard search calls since process start.
	Queries uint64
	// Errors counts per-shard search calls that failed (remote shard
	// unreachable; always 0 for local shards).
	Errors uint64
	// AvgQueryLatency is the mean per-shard search latency.
	AvgQueryLatency time.Duration
}

// ShardStats returns one gauge row per shard for the monitoring dashboard.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		q := s.stats[i].queries.Load()
		ns := s.stats[i].nanos.Load()
		st := ShardStat{Shard: i, Stats: sh.Stats(), Queries: q, Errors: s.stats[i].errors.Load()}
		if q > 0 {
			st.AvgQueryLatency = time.Duration(ns / q)
		}
		out[i] = st
	}
	return out
}
