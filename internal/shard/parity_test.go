package shard_test

// The acceptance criterion for the sharded facade: searching N shards
// returns byte-identical ranked results to the monolithic index — same ids,
// same scores, same order — for every retrieval variant the paper ablates
// (Tables 1-3), because BM25 scores with global corpus statistics and
// vector ties break on global arrival order.
//
// Both sides run the exhaustive exact k-NN backend: per-shard HNSW graphs
// are legitimately different graphs than one monolithic HNSW (approximate
// recall differs by construction), so graph-based parity would compare two
// approximations. Exhaustive search makes both sides exact and the
// comparison meaningful.

import (
	"context"
	"fmt"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/queue"
	"uniask/internal/rerank"
	"uniask/internal/search"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// parityCorpusDocs keeps the fixture big enough that per-shard rankings
// genuinely interleave at every shard count, small enough for -race runs.
const parityCorpusDocs = 120

// exhaustiveConfig is the shared per-index configuration of the parity
// fixtures: indexer schema, exact vector backend.
func exhaustiveConfig() index.Config {
	return index.Config{
		Schema:      indexer.Schema(),
		VectorIndex: func(string) vector.Index { return vector.NewExhaustive() },
	}
}

// extractCorpus runs the real ingestion pipeline over a generated corpus so
// the fixtures index exactly what production would.
func extractCorpus(t testing.TB, corpus *kb.Corpus) []ingest.Extracted {
	t.Helper()
	pages := make(ingest.StaticSource, len(corpus.Docs))
	for i, d := range corpus.Docs {
		pages[i] = ingest.Page{ID: d.ID, HTML: d.HTML}
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	var docs []ingest.Extracted
	for {
		doc, ok := q.TryDequeue()
		if !ok {
			break
		}
		docs = append(docs, doc)
	}
	return docs
}

// buildSearcher indexes the extracted docs into repo and wraps it in the
// full retrieval stack.
func buildSearcher(t testing.TB, repo index.Repository, docs []ingest.Extracted, emb embedding.Embedder, client llm.Client) *search.Searcher {
	t.Helper()
	in := indexer.New(repo, emb, client, indexer.Config{})
	if _, err := in.IndexBatch(context.Background(), docs, 4); err != nil {
		t.Fatal(err)
	}
	return &search.Searcher{
		Index:    repo,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      client,
		Workers:  4,
	}
}

// parityQueries samples the Tables 1-3 evaluation query sets: expert
// natural-language questions and keyword-log queries.
func parityQueries(corpus *kb.Corpus, seed int64) []string {
	var out []string
	for _, q := range corpus.HumanDataset(12, seed+100).Queries {
		out = append(out, q.Text)
	}
	for _, q := range corpus.KeywordDataset(12, seed+200).Queries {
		out = append(out, q.Text)
	}
	out = append(out, "") // degenerate query
	return out
}

// parityVariants is every retrieval configuration the paper ablates:
// HSS (Table 1), the mode ablation (Table 2), the expansion and
// title-boost variants (Table 3).
func parityVariants() []struct {
	name string
	opts search.Options
} {
	return []struct {
		name string
		opts search.Options
	}{
		{"HSS", search.Options{}},
		{"TextOnly", search.Options{Mode: search.TextOnly, DisableSemanticRerank: true}},
		{"VectorOnly", search.Options{Mode: search.VectorOnly, DisableSemanticRerank: true}},
		{"QGA", search.Options{Expansion: search.QGA}},
		{"MQ1", search.Options{Expansion: search.MQ1}},
		{"MQ2", search.Options{Expansion: search.MQ2}},
		{"T5", search.Options{TitleBoost: 5}},
		{"T50", search.Options{TitleBoost: 50}},
		{"T500", search.Options{TitleBoost: 500}},
	}
}

// TestShardParityMatchesMonolithic is the cross-check: one monolithic index
// and one facade per shard count, fed identically, must return identical
// []search.Result for every query of every variant.
func TestShardParityMatchesMonolithic(t *testing.T) {
	const seed = 7
	corpus := kb.Generate(kb.GenConfig{Docs: parityCorpusDocs, Seed: seed})
	docs := extractCorpus(t, corpus)
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())

	mono := buildSearcher(t, index.New(exhaustiveConfig()), docs, emb, client)
	queries := parityQueries(corpus, seed)
	variants := parityVariants()

	// Baselines once per (variant, query) on the monolithic index.
	type key struct{ variant, query int }
	want := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := mono.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("monolithic %s %q: %v", v.name, q, err)
			}
			want[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			facade := shard.New(shard.Config{Shards: shards, Index: exhaustiveConfig()})
			s := buildSearcher(t, facade, docs, emb, client)
			if got := facade.LiveLen(); got != mono.Index.(*index.Index).LiveLen() {
				t.Fatalf("facade holds %d live chunks, monolithic %d", got, mono.Index.(*index.Index).LiveLen())
			}
			for vi, v := range variants {
				for qi, q := range queries {
					res, err := s.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("%s %q: %v", v.name, q, err)
					}
					if got := fmt.Sprintf("%#v", res); got != want[key{vi, qi}] {
						t.Errorf("%s %q: sharded ranking diverged from monolithic\nmono:  %s\nshard: %s",
							v.name, q, want[key{vi, qi}], got)
					}
				}
			}
		})
	}
}
