package shard_test

// The acceptance criterion for the sharded facade: searching N shards
// returns byte-identical ranked results to the monolithic index — same ids,
// same scores, same order — for every retrieval variant the paper ablates
// (Tables 1-3), because BM25 scores with global corpus statistics and
// vector ties break on global arrival order.
//
// Both sides run the exhaustive exact k-NN backend: per-shard HNSW graphs
// are legitimately different graphs than one monolithic HNSW (approximate
// recall differs by construction), so graph-based parity would compare two
// approximations. Exhaustive search makes both sides exact and the
// comparison meaningful.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/queue"
	"uniask/internal/rerank"
	"uniask/internal/search"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// parityCorpusDocs keeps the fixture big enough that per-shard rankings
// genuinely interleave at every shard count, small enough for -race runs.
const parityCorpusDocs = 120

// exhaustiveConfig is the shared per-index configuration of the parity
// fixtures: indexer schema, exact vector backend.
func exhaustiveConfig() index.Config {
	return index.Config{
		Schema:      indexer.Schema(),
		VectorIndex: func(string) vector.Index { return vector.NewExhaustive() },
	}
}

// extractCorpus runs the real ingestion pipeline over a generated corpus so
// the fixtures index exactly what production would.
func extractCorpus(t testing.TB, corpus *kb.Corpus) []ingest.Extracted {
	t.Helper()
	pages := make(ingest.StaticSource, len(corpus.Docs))
	for i, d := range corpus.Docs {
		pages[i] = ingest.Page{ID: d.ID, HTML: d.HTML}
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	var docs []ingest.Extracted
	for {
		doc, ok := q.TryDequeue()
		if !ok {
			break
		}
		docs = append(docs, doc)
	}
	return docs
}

// buildSearcher indexes the extracted docs into repo and wraps it in the
// full retrieval stack.
func buildSearcher(t testing.TB, repo index.Repository, docs []ingest.Extracted, emb embedding.Embedder, client llm.Client) *search.Searcher {
	t.Helper()
	in := indexer.New(repo, emb, client, indexer.Config{})
	if _, err := in.IndexBatch(context.Background(), docs, 4); err != nil {
		t.Fatal(err)
	}
	return &search.Searcher{
		Index:    repo,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      client,
		Workers:  4,
	}
}

// parityQueries samples the Tables 1-3 evaluation query sets: expert
// natural-language questions and keyword-log queries.
func parityQueries(corpus *kb.Corpus, seed int64) []string {
	var out []string
	for _, q := range corpus.HumanDataset(12, seed+100).Queries {
		out = append(out, q.Text)
	}
	for _, q := range corpus.KeywordDataset(12, seed+200).Queries {
		out = append(out, q.Text)
	}
	out = append(out, "") // degenerate query
	return out
}

// parityVariants is every retrieval configuration the paper ablates:
// HSS (Table 1), the mode ablation (Table 2), the expansion and
// title-boost variants (Table 3).
func parityVariants() []struct {
	name string
	opts search.Options
} {
	return []struct {
		name string
		opts search.Options
	}{
		{"HSS", search.Options{}},
		{"TextOnly", search.Options{Mode: search.TextOnly, DisableSemanticRerank: true}},
		{"VectorOnly", search.Options{Mode: search.VectorOnly, DisableSemanticRerank: true}},
		{"QGA", search.Options{Expansion: search.QGA}},
		{"MQ1", search.Options{Expansion: search.MQ1}},
		{"MQ2", search.Options{Expansion: search.MQ2}},
		{"T5", search.Options{TitleBoost: 5}},
		{"T50", search.Options{TitleBoost: 50}},
		{"T500", search.Options{TitleBoost: 500}},
	}
}

// TestShardParitySegmentedLifecycle extends the parity criterion across the
// segmented store's whole lifecycle: shards run with a tiny memtable so the
// corpus shatters into many sealed segments plus live memtables, and the
// facade must still rank byte-identically to the monolithic index — first
// with unpublished writes and tombstones in place, then again after every
// shard has fully compacted (compared against the compacted monolithic
// index, which holds the same statistics once all tombstones are dropped).
func TestShardParitySegmentedLifecycle(t *testing.T) {
	const seed = 7
	corpus := kb.Generate(kb.GenConfig{Docs: parityCorpusDocs, Seed: seed})
	docs := extractCorpus(t, corpus)
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())
	queries := parityQueries(corpus, seed)
	variants := parityVariants()

	// Parents deleted mid-lifecycle, spread across the corpus.
	var victims []string
	for i := 0; i < len(corpus.Docs); i += 9 {
		victims = append(victims, corpus.Docs[i].ID)
	}

	monoIx := index.New(exhaustiveConfig())
	mono := buildSearcher(t, monoIx, docs, emb, client)
	for _, p := range victims {
		monoIx.DeleteParent(p)
	}
	type key struct{ variant, query int }
	wantLive := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := mono.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("monolithic %s %q: %v", v.name, q, err)
			}
			wantLive[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}

	monoLive := monoIx.LiveLen()

	// Sentinel documents covering every FNV residue mod 8 (and therefore
	// every shard at each tested count): added after the deletes, they leave
	// every shard's memtable non-empty so the final publication seals one
	// more segment per shard and the compactor's last merge reclaims every
	// tombstone deterministically.
	probe := shard.New(shard.Config{Shards: 8, Index: exhaustiveConfig()})
	sentinels := make([]index.Document, 0, 8)
	covered := make(map[int]bool)
	for i := 0; len(covered) < 8 && i < 1000; i++ {
		id := fmt.Sprintf("pad%03d#0", i)
		res := probe.ShardFor(id)
		if covered[res] {
			continue
		}
		covered[res] = true
		title := fmt.Sprintf("Nota operativa %d", i)
		content := fmt.Sprintf("Aggiornamento %d della nota operativa sul conto.", i)
		sentinels = append(sentinels, index.Document{
			ID: id, ParentID: fmt.Sprintf("pad%03d", i),
			Fields: map[string]string{"title": title, "content": content},
			Vectors: map[string]vector.Vector{
				"titleVector":   emb.Embed(title),
				"contentVector": emb.Embed(content),
			},
		})
	}
	if len(sentinels) != 8 {
		t.Fatalf("found %d sentinel residues, want 8", len(sentinels))
	}
	for _, d := range sentinels {
		if err := monoIx.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	compactedIx, err := monoIx.Compact()
	if err != nil {
		t.Fatal(err)
	}
	compacted := &search.Searcher{Index: compactedIx, Embedder: emb, Reranker: rerank.New(), LLM: client, Workers: 4}
	wantCompacted := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := compacted.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("compacted monolithic %s %q: %v", v.name, q, err)
			}
			wantCompacted[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			facade := shard.New(shard.Config{
				Shards: shards,
				Index:  exhaustiveConfig(),
				// Memtable of 8 shatters every shard into many segments;
				// fan-in 2 lets the background compactor merge all the way
				// down once the deletes are published.
				Segment: index.SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: 2},
			})
			s := buildSearcher(t, facade, docs, emb, client)
			// Quiesce the build-time compactor before deleting so both sides
			// hold exactly the same tombstones during the live phase.
			facade.WaitCompaction()
			for _, p := range victims {
				facade.DeleteParent(p)
			}
			if got := facade.LiveLen(); got != monoLive {
				t.Fatalf("facade holds %d live chunks, monolithic %d", got, monoLive)
			}
			sealed := 0
			for _, st := range facade.SegmentStats() {
				sealed += st.Segments
			}
			if sealed < shards {
				t.Fatalf("fixture produced only %d sealed segments across %d shards", sealed, shards)
			}
			for vi, v := range variants {
				for qi, q := range queries {
					res, err := s.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("live %s %q: %v", v.name, q, err)
					}
					if got := fmt.Sprintf("%#v", res); got != wantLive[key{vi, qi}] {
						t.Errorf("live %s %q: segmented ranking diverged from monolithic\nmono:  %s\nshard: %s",
							v.name, q, wantLive[key{vi, qi}], got)
					}
				}
			}

			// Publish the tombstoned state and let every shard compact to a
			// single tombstone-free segment: the sentinels guarantee one
			// fresh seal per shard, so every shard has at least two sealed
			// segments and the drain merges all of them.
			for _, d := range sentinels {
				if err := facade.Add(d); err != nil {
					t.Fatal(err)
				}
			}
			facade.Publish()
			facade.WaitCompaction()
			if got := facade.Tombstones(); got != 0 {
				t.Fatalf("compaction left %d tombstones (fixture must give every shard >= 2 segments)", got)
			}
			for vi, v := range variants {
				for qi, q := range queries {
					res, err := s.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("compacted %s %q: %v", v.name, q, err)
					}
					if got := fmt.Sprintf("%#v", res); got != wantCompacted[key{vi, qi}] {
						t.Errorf("compacted %s %q: segmented ranking diverged from compacted monolithic\nmono:  %s\nshard: %s",
							v.name, q, wantCompacted[key{vi, qi}], got)
					}
				}
			}
		})
	}
}

// TestShardParityMatchesMonolithic is the cross-check: one monolithic index
// and one facade per shard count, fed identically, must return identical
// []search.Result for every query of every variant.
func TestShardParityMatchesMonolithic(t *testing.T) {
	const seed = 7
	corpus := kb.Generate(kb.GenConfig{Docs: parityCorpusDocs, Seed: seed})
	docs := extractCorpus(t, corpus)
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())

	mono := buildSearcher(t, index.New(exhaustiveConfig()), docs, emb, client)
	queries := parityQueries(corpus, seed)
	variants := parityVariants()

	// Baselines once per (variant, query) on the monolithic index.
	type key struct{ variant, query int }
	want := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := mono.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("monolithic %s %q: %v", v.name, q, err)
			}
			want[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			facade := shard.New(shard.Config{Shards: shards, Index: exhaustiveConfig()})
			s := buildSearcher(t, facade, docs, emb, client)
			if got := facade.LiveLen(); got != mono.Index.(*index.Index).LiveLen() {
				t.Fatalf("facade holds %d live chunks, monolithic %d", got, mono.Index.(*index.Index).LiveLen())
			}
			for vi, v := range variants {
				for qi, q := range queries {
					res, err := s.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("%s %q: %v", v.name, q, err)
					}
					if got := fmt.Sprintf("%#v", res); got != want[key{vi, qi}] {
						t.Errorf("%s %q: sharded ranking diverged from monolithic\nmono:  %s\nshard: %s",
							v.name, q, want[key{vi, qi}], got)
					}
				}
			}
		})
	}
}

// TestShardParityQuantizedReplay extends the byte-parity harness to the
// quantized vector path. Cross-topology parity (above) runs the exhaustive
// backend because per-shard HNSW graphs are legitimately different graphs;
// the quantized guarantee is *replay* parity: a facade running the default
// int8-quantized HNSW must, after a save/load round trip of its
// sharded-segmented container, reproduce every vector ranking — ids,
// scores, order — exactly, at every shard count, with sealed segments,
// live memtables and tombstones all in play. That holds only if the
// quantized arena survives the snapshot bit-for-bit (a requantized or
// rebuilt graph would walk different beams).
func TestShardParityQuantizedReplay(t *testing.T) {
	emb := embedding.NewSynth(32, nil)
	domains := []string{"prodotti", "pagamenti", "errori"}
	queryTexts := []string{
		"carta istruzioni operative",
		"procedura per la verifica",
		"contenuto della carta numero 7",
	}
	fingerprint := func(q index.Queryable) string {
		var b strings.Builder
		for _, text := range queryTexts {
			qv := emb.Embed(text)
			for _, f := range [][]index.Filter{nil, {{Field: "domain", Value: "pagamenti"}}} {
				for _, h := range q.SearchVector("contentVector", qv, 12, f) {
					fmt.Fprintf(&b, "%s=%v;", h.ID, h.Score)
				}
				b.WriteString("|")
			}
		}
		return b.String()
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := shard.Config{
				Shards:  shards,
				Segment: index.SegmentConfig{MemtableMaxDocs: 16, CompactionFanIn: -1},
			}
			s := shard.New(cfg)
			add := func(i int) {
				title := fmt.Sprintf("titolo procedura %d", i)
				content := fmt.Sprintf("contenuto della carta numero %d con istruzioni operative", i)
				err := s.Add(index.Document{
					ID:       fmt.Sprintf("q%03d#0", i),
					ParentID: fmt.Sprintf("q%03d", i),
					Fields:   map[string]string{"title": title, "content": content, "domain": domains[i%3]},
					Vectors:  map[string]vector.Vector{"contentVector": emb.Embed(content)},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 70; i++ {
				add(i)
			}
			s.Publish() // seal: the arena now lives in sealed segments
			for i := 70; i < 90; i++ {
				add(i) // and in live memtables
			}
			s.Delete("q004#0")
			s.DeleteParent("q010")

			want := fingerprint(s)
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := shard.Load(&buf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(loaded); got != want {
				t.Fatalf("replayed quantized rankings diverged\nwant: %s\ngot:  %s", want, got)
			}
		})
	}
}
