package shard_test

// The network-distributed extension of the parity criterion: a facade whose
// shards live on remote shard servers — replicated, hedged, reached over
// TCP loopback — must rank byte-identically to the same facade with
// in-process shards AND to the monolithic index, across the segmented
// store's whole lifecycle (live memtables, tombstones, full compaction).
// The wire protocol must be a transparent transport; replication and
// hedging must add availability, never change a single byte of a ranking.

import (
	"context"
	"fmt"
	"testing"

	"uniask/internal/index"
	"uniask/internal/remote"
	"uniask/internal/search"
	"uniask/internal/shard"

	"uniask/internal/embedding"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/rerank"
	"uniask/internal/vector"
)

// remoteCluster boots loopback shard servers for one facade topology and
// returns the remote backends addressing them. No external processes: the
// servers are the same code cmd/uniask-shard runs, listening on ephemeral
// loopback ports inside the test.
func remoteCluster(t testing.TB, servers, shards, replication int, ixCfg index.Config, segCfg index.SegmentConfig) []shard.Backend {
	t.Helper()
	endpoints := make([]string, servers)
	for i := range endpoints {
		srv := remote.NewServer(remote.ServerConfig{Index: ixCfg, Segment: segCfg})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		endpoints[i] = srv.Addr()
	}
	return remote.Topology{
		Endpoints:   endpoints,
		Shards:      shards,
		Replication: replication,
	}.Backends()
}

// TestShardParityRemoteThreeWay is the three-way lifecycle parity harness:
// remote == in-process == monolithic, byte-identical at every shard count,
// first with live memtables and tombstones in place, then again after full
// compaction. Replication factor 2 over three servers means every query
// scatter-gathers over genuinely replicated remote shards.
func TestShardParityRemoteThreeWay(t *testing.T) {
	if testing.Short() {
		t.Skip("network lifecycle parity is not a -short test")
	}
	const seed = 7
	corpus := kb.Generate(kb.GenConfig{Docs: parityCorpusDocs, Seed: seed})
	docs := extractCorpus(t, corpus)
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())
	queries := parityQueries(corpus, seed)
	variants := parityVariants()

	var victims []string
	for i := 0; i < len(corpus.Docs); i += 9 {
		victims = append(victims, corpus.Docs[i].ID)
	}

	// Monolithic baselines: live phase (with tombstones), then compacted.
	monoIx := index.New(exhaustiveConfig())
	mono := buildSearcher(t, monoIx, docs, emb, client)
	for _, p := range victims {
		monoIx.DeleteParent(p)
	}
	type key struct{ variant, query int }
	wantLive := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := mono.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("monolithic %s %q: %v", v.name, q, err)
			}
			wantLive[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}
	monoLive := monoIx.LiveLen()

	// Sentinels covering every shard residue (see parity_test.go): they
	// guarantee one fresh seal per shard so the final compaction drains
	// every tombstone on both facades.
	probe := shard.New(shard.Config{Shards: 8, Index: exhaustiveConfig()})
	sentinels := make([]index.Document, 0, 8)
	covered := make(map[int]bool)
	for i := 0; len(covered) < 8 && i < 1000; i++ {
		id := fmt.Sprintf("pad%03d#0", i)
		res := probe.ShardFor(id)
		if covered[res] {
			continue
		}
		covered[res] = true
		title := fmt.Sprintf("Nota operativa %d", i)
		content := fmt.Sprintf("Aggiornamento %d della nota operativa sul conto.", i)
		sentinels = append(sentinels, index.Document{
			ID: id, ParentID: fmt.Sprintf("pad%03d", i),
			Fields: map[string]string{"title": title, "content": content},
			Vectors: map[string]vector.Vector{
				"titleVector":   emb.Embed(title),
				"contentVector": emb.Embed(content),
			},
		})
	}
	if len(sentinels) != 8 {
		t.Fatalf("found %d sentinel residues, want 8", len(sentinels))
	}
	for _, d := range sentinels {
		if err := monoIx.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	compactedIx, err := monoIx.Compact()
	if err != nil {
		t.Fatal(err)
	}
	compacted := &search.Searcher{Index: compactedIx, Embedder: emb, Reranker: rerank.New(), LLM: client, Workers: 4}
	wantCompacted := make(map[key]string)
	for vi, v := range variants {
		for qi, q := range queries {
			res, err := compacted.Search(context.Background(), q, v.opts)
			if err != nil {
				t.Fatalf("compacted monolithic %s %q: %v", v.name, q, err)
			}
			wantCompacted[key{vi, qi}] = fmt.Sprintf("%#v", res)
		}
	}

	segCfg := index.SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: 2}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// The in-process facade and the remote facade share nothing but
			// configuration: the remote one scatter-gathers over three
			// loopback shard servers at replication factor 2.
			localFacade := shard.New(shard.Config{Shards: shards, Index: exhaustiveConfig(), Segment: segCfg})
			backends := remoteCluster(t, 3, shards, 2, exhaustiveConfig(), segCfg)
			remoteFacade := shard.NewWithBackends(shard.Config{Shards: shards, Index: exhaustiveConfig(), Segment: segCfg}, backends)
			defer remoteFacade.Close()

			local := buildSearcher(t, localFacade, docs, emb, client)
			remoteS := buildSearcher(t, remoteFacade, docs, emb, client)
			localFacade.WaitCompaction()
			remoteFacade.WaitCompaction()
			for _, p := range victims {
				localFacade.DeleteParent(p)
				remoteFacade.DeleteParent(p)
			}
			if got := remoteFacade.LiveLen(); got != monoLive {
				t.Fatalf("remote facade holds %d live chunks, monolithic %d", got, monoLive)
			}
			if got := localFacade.LiveLen(); got != monoLive {
				t.Fatalf("in-process facade holds %d live chunks, monolithic %d", got, monoLive)
			}
			for vi, v := range variants {
				for qi, q := range queries {
					lres, err := local.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("live in-process %s %q: %v", v.name, q, err)
					}
					rres, err := remoteS.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("live remote %s %q: %v", v.name, q, err)
					}
					want := wantLive[key{vi, qi}]
					if got := fmt.Sprintf("%#v", lres); got != want {
						t.Errorf("live %s %q: in-process diverged from monolithic\nmono:  %s\nlocal: %s", v.name, q, want, got)
					}
					if got := fmt.Sprintf("%#v", rres); got != want {
						t.Errorf("live %s %q: remote diverged from monolithic\nmono:   %s\nremote: %s", v.name, q, want, got)
					}
				}
			}

			// Publish + full compaction on both facades, then the three-way
			// comparison again against the compacted monolithic baseline.
			for _, d := range sentinels {
				if err := localFacade.Add(d); err != nil {
					t.Fatal(err)
				}
				if err := remoteFacade.Add(d); err != nil {
					t.Fatal(err)
				}
			}
			localFacade.Publish()
			localFacade.WaitCompaction()
			remoteFacade.Publish()
			remoteFacade.WaitCompaction()
			if got := remoteFacade.Tombstones(); got != 0 {
				t.Fatalf("remote compaction left %d tombstones", got)
			}
			for vi, v := range variants {
				for qi, q := range queries {
					lres, err := local.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("compacted in-process %s %q: %v", v.name, q, err)
					}
					rres, err := remoteS.Search(context.Background(), q, v.opts)
					if err != nil {
						t.Fatalf("compacted remote %s %q: %v", v.name, q, err)
					}
					want := wantCompacted[key{vi, qi}]
					if got := fmt.Sprintf("%#v", lres); got != want {
						t.Errorf("compacted %s %q: in-process diverged from monolithic\nmono:  %s\nlocal: %s", v.name, q, want, got)
					}
					if got := fmt.Sprintf("%#v", rres); got != want {
						t.Errorf("compacted %s %q: remote diverged from monolithic\nmono:   %s\nremote: %s", v.name, q, want, got)
					}
				}
			}
		})
	}
}
