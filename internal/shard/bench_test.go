package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"uniask/internal/index"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// benchFacade builds a warm sharded facade over the same 2000-doc corpus
// shape as the index package's micro-benchmarks, so per-shard-count numbers
// are comparable with the monolithic BenchmarkSearchText baseline.
func benchFacade(tb testing.TB, shards int) (*shard.Sharded, vector.Vector) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	s := shard.New(shard.Config{Shards: shards})
	subjects := []string{
		"carta di credito", "bonifico estero", "conto corrente",
		"mutuo prima casa", "prestito personale", "deposito titoli",
	}
	actions := []string{"bloccare", "aprire", "chiudere", "modificare", "verificare", "autorizzare"}
	domains := []string{"prodotti", "pagamenti", "errori", "normativa"}
	dim := 64
	docs := make([]index.Document, 0, 2000)
	for i := 0; i < 2000; i++ {
		subj := subjects[i%len(subjects)]
		act := actions[(i/len(subjects))%len(actions)]
		title := fmt.Sprintf("Procedura %d: %s %s", i, act, subj)
		content := fmt.Sprintf(
			"La procedura operativa %d per %s il servizio %s prevede passaggi autorizzativi, "+
				"controlli di conformità interni e la verifica del codice cliente PRC-%04d.",
			i, act, subj, i%97)
		tv := make(vector.Vector, dim)
		cv := make(vector.Vector, dim)
		for j := 0; j < dim; j++ {
			tv[j] = float32(rng.NormFloat64())
			cv[j] = float32(rng.NormFloat64())
		}
		docs = append(docs, index.Document{
			ID:       fmt.Sprintf("d%04d#0", i),
			ParentID: fmt.Sprintf("d%04d", i),
			Fields: map[string]string{
				"title":   title,
				"content": content,
				"domain":  domains[i%len(domains)],
				"topic":   subj,
			},
			Vectors: map[string]vector.Vector{
				"titleVector":   tv,
				"contentVector": cv,
			},
		})
	}
	if err := s.AddBulk(docs); err != nil {
		tb.Fatal(err)
	}
	q := make(vector.Vector, dim)
	for j := 0; j < dim; j++ {
		q[j] = float32(rng.NormFloat64())
	}
	return s, q
}

// BenchmarkSearchTextSharded measures the BM25 fan-out (stats wave + scoring
// wave + merge) as the shard count grows on a fixed corpus. shards=1 is the
// facade's fast path and should track the monolithic BenchmarkSearchText.
func BenchmarkSearchTextSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, _ := benchFacade(b, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SearchText("procedura autorizzativa per verificare il conto corrente", 50, index.TextOptions{})
			}
		})
	}
}

// BenchmarkSearchVectorSharded measures the ANN fan-out and the
// sequence-tiebreak merge as the shard count grows.
func BenchmarkSearchVectorSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, q := benchFacade(b, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SearchVector("contentVector", q, 15, nil)
			}
		})
	}
}

// BenchmarkShardedBuild measures the parallel per-shard bulk build.
func BenchmarkShardedBuild(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchFacade(b, shards)
			}
		})
	}
}
