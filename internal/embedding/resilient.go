package embedding

// Context-aware, fallible embedding: the production embedder is a remote
// API (text-embedding-ada-002 behind Azure OpenAI), so its calls can fail,
// stall, or return garbage. CtxEmbedder is the remote-shaped interface the
// query path consumes; Resilient decorates any CtxEmbedder with retries, a
// circuit breaker, optional tail-latency hedging, and response validation
// (a vector of the wrong dimensionality is an error, not a result — the
// retry-with-verification stance of eSapiens' DEREK module).

import (
	"context"
	"fmt"
	"time"

	"uniask/internal/resilience"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// CtxEmbedder is a fallible, cancellable embedder — the shape of a remote
// embedding API.
type CtxEmbedder interface {
	// EmbedCtx returns the embedding of text, honoring ctx.
	EmbedCtx(ctx context.Context, text string) (vector.Vector, error)
	// Dim reports the embedding dimensionality.
	Dim() int
}

// ctxAdapter lifts an infallible in-process Embedder to CtxEmbedder.
type ctxAdapter struct{ e Embedder }

func (a ctxAdapter) EmbedCtx(ctx context.Context, text string) (vector.Vector, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.e.Embed(text), nil
}

func (a ctxAdapter) Dim() int { return a.e.Dim() }

// AsCtx adapts a plain Embedder to CtxEmbedder. If e already implements
// CtxEmbedder it is returned as-is.
func AsCtx(e Embedder) CtxEmbedder {
	if ce, ok := e.(CtxEmbedder); ok {
		return ce
	}
	return ctxAdapter{e: e}
}

// Resilient decorates a CtxEmbedder with the resilience layer. It also
// implements the plain Embedder interface so it can slot into existing
// call sites; the no-context Embed degrades errors to the zero vector.
type Resilient struct {
	// Inner is the wrapped embedder.
	Inner CtxEmbedder
	// Policy is the retry policy (zero value = resilience defaults).
	Policy resilience.Policy
	// Breaker, when set, sheds calls while the embedding dependency is
	// down.
	Breaker *resilience.Breaker
	// HedgeDelay, when positive, races a second attempt against a primary
	// that has not answered within the delay (embeddings are idempotent,
	// so hedging is safe).
	HedgeDelay time.Duration
}

// EmbedCtx implements CtxEmbedder: retries transient failures, validates
// the dimensionality of every response, and trips/obeys the breaker. On a
// traced request the call is one "embedding.embed" leaf span carrying the
// retry, hedge and breaker events.
func (r *Resilient) EmbedCtx(ctx context.Context, text string) (v vector.Vector, err error) {
	ctx, sp := trace.Start(ctx, "embedding.embed")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	return r.embedCtx(ctx, text)
}

func (r *Resilient) embedCtx(ctx context.Context, text string) (vector.Vector, error) {
	attempt := func(ctx context.Context) (vector.Vector, error) {
		op := func(ctx context.Context) (vector.Vector, error) {
			if r.HedgeDelay > 0 {
				return resilience.Hedge(ctx, r.Policy.Clock, r.HedgeDelay, func(ctx context.Context, _ int) (vector.Vector, error) {
					return r.Inner.EmbedCtx(ctx, text)
				})
			}
			return r.Inner.EmbedCtx(ctx, text)
		}
		v, err := op(ctx)
		if err != nil {
			return nil, err
		}
		if len(v) != r.Inner.Dim() {
			return nil, fmt.Errorf("embedding: malformed response: got %d dimensions, want %d", len(v), r.Inner.Dim())
		}
		return v, nil
	}
	if r.Breaker == nil {
		return resilience.DoValue(ctx, r.Policy, attempt)
	}
	return resilience.DoValue(ctx, r.Policy, func(ctx context.Context) (vector.Vector, error) {
		if err := r.Breaker.Allow(); err != nil {
			trace.AddEvent(ctx, "breaker.shed", trace.A("breaker", r.Breaker.Name()))
			return nil, err
		}
		v, err := attempt(ctx)
		r.Breaker.RecordCtx(ctx, err)
		return v, err
	})
}

// Embed implements Embedder for legacy call sites that cannot fail; errors
// degrade to the zero vector (callers on the resilient path use EmbedCtx).
func (r *Resilient) Embed(text string) vector.Vector {
	v, err := r.EmbedCtx(context.Background(), text)
	if err != nil {
		return make(vector.Vector, r.Inner.Dim())
	}
	return v
}

// Dim implements Embedder and CtxEmbedder.
func (r *Resilient) Dim() int { return r.Inner.Dim() }
