package embedding

import (
	"math"
	"testing"

	"uniask/internal/vector"
)

// testLexicon maps stems of "bloccare/sospendere/disattivare" onto one
// concept and "carta/tessera" onto another, mimicking the kb vocabulary.
func testLexicon() MapLexicon {
	return MapLexicon{
		"blocca":    "act:block",
		"sospende":  "act:block",
		"disattiva": "act:block",
		"cart":      "obj:card",
		"tesser":    "obj:card",
		"bonific":   "obj:transfer",
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := NewSynth(64, testLexicon())
	a := e.Embed("bloccare la carta di credito")
	b := e.Embed("bloccare la carta di credito")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := NewSynth(64, testLexicon())
	v := e.Embed("procedura di blocco della carta")
	if math.Abs(float64(vector.Norm(v))-1) > 1e-5 {
		t.Fatalf("norm = %v", vector.Norm(v))
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := NewSynth(32, nil)
	v := e.Embed("")
	if vector.Norm(v) != 0 {
		t.Fatalf("empty text embedding norm = %v", vector.Norm(v))
	}
	v2 := e.Embed("di la il") // all stop words
	if vector.Norm(v2) != 0 {
		t.Fatalf("stopword-only embedding norm = %v", vector.Norm(v2))
	}
}

func TestSynonymsLandClose(t *testing.T) {
	e := NewSynth(128, testLexicon())
	doc := e.Embed("bloccare carta")
	para := e.Embed("sospendere tessera") // pure synonyms, zero word overlap
	unrel := e.Embed("bonifico estero urgente")
	simPara := vector.Cosine(doc, para)
	simUnrel := vector.Cosine(doc, unrel)
	if simPara < 0.6 {
		t.Fatalf("synonym similarity = %.3f, want >= 0.6", simPara)
	}
	if simPara <= simUnrel {
		t.Fatalf("paraphrase (%.3f) not closer than unrelated (%.3f)", simPara, simUnrel)
	}
}

func TestCodesAreOpaque(t *testing.T) {
	e := NewSynth(128, testLexicon())
	a := e.Embed("err-4032")
	b := e.Embed("err-4033")
	if sim := vector.Cosine(a, b); sim > 0.3 {
		t.Fatalf("two distinct codes similar: %.3f", sim)
	}
	// The same code must still match itself exactly.
	if sim := vector.Cosine(a, e.Embed("ERR-4032")); sim < 0.999 {
		t.Fatalf("same code dissimilar: %.3f", sim)
	}
}

func TestInflectionsShareVector(t *testing.T) {
	e := NewSynth(128, testLexicon())
	a := e.Embed("bonifico")
	b := e.Embed("bonifici")
	if sim := vector.Cosine(a, b); sim < 0.999 {
		t.Fatalf("inflections dissimilar: %.3f", sim)
	}
}

func TestUnknownSharedWordAligns(t *testing.T) {
	e := NewSynth(128, testLexicon())
	a := e.Embed("paperolo") // not in lexicon
	b := e.Embed("paperolo")
	if sim := vector.Cosine(a, b); sim < 0.999 {
		t.Fatalf("unknown word not self-similar: %.3f", sim)
	}
}

func TestNoiseScaleControlsSynonymTightness(t *testing.T) {
	tight := NewSynth(128, testLexicon())
	tight.NoiseScale = 0.1
	loose := NewSynth(128, testLexicon())
	loose.NoiseScale = 1.5
	simTight := vector.Cosine(tight.Embed("bloccare"), tight.Embed("sospendere"))
	simLoose := vector.Cosine(loose.Embed("bloccare"), loose.Embed("sospendere"))
	if simTight <= simLoose {
		t.Fatalf("noise scale not monotone: tight %.3f <= loose %.3f", simTight, simLoose)
	}
}

func TestMean(t *testing.T) {
	a := vector.Vector{1, 0}
	b := vector.Vector{0, 1}
	m := Mean([]vector.Vector{a, b}, 2)
	if math.Abs(float64(m[0]-m[1])) > 1e-6 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(float64(vector.Norm(m))-1) > 1e-6 {
		t.Fatalf("mean norm = %v", vector.Norm(m))
	}
	if z := Mean(nil, 3); vector.Norm(z) != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestDimDefault(t *testing.T) {
	e := NewSynth(0, nil)
	if e.Dim() != DefaultDim {
		t.Fatalf("Dim = %d", e.Dim())
	}
	if got := len(e.Embed("testo di prova")); got != DefaultDim {
		t.Fatalf("embedding len = %d", got)
	}
}

func TestConcurrentEmbedSafe(t *testing.T) {
	e := NewSynth(64, testLexicon())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				e.Embed("bloccare la carta bonifico estero tessera")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func BenchmarkEmbed(b *testing.B) {
	e := NewSynth(DefaultDim, testLexicon())
	text := "come posso bloccare la carta di credito smarrita durante un viaggio all'estero"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Embed(text)
	}
}
