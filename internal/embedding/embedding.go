// Package embedding provides the text-embedding substrate that substitutes
// for text-embedding-ada-002 in the reproduction. The paper's evaluation
// hinges on two properties of the embedding space, both engineered here:
//
//  1. paraphrase proximity — a natural-language question that uses synonyms
//     of a document's vocabulary must land close to that document's vector
//     (this is why vector search rescues the human-question dataset);
//  2. jargon opacity — identifier-like tokens (error codes, procedure
//     codes) have no distributional semantics, so two different codes are
//     far apart and a code query is served better by exact text match (this
//     is why text search wins on the keyword dataset).
//
// The embedder realizes (1) through a concept lexicon: every content term
// maps to a concept, and all terms of a concept share a deterministic base
// vector with small per-term noise. It realizes (2) by giving terms with
// digits a pure per-term hash vector with no shared concept component.
package embedding

import (
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"

	"uniask/internal/textproc"
	"uniask/internal/vector"
)

// Lexicon maps a normalized (stemmed) term to its concept identifier.
// Terms absent from the lexicon are treated as standalone concepts.
type Lexicon interface {
	ConceptOf(term string) (string, bool)
}

// MapLexicon is a Lexicon backed by a plain map.
type MapLexicon map[string]string

// ConceptOf implements Lexicon.
func (m MapLexicon) ConceptOf(term string) (string, bool) {
	c, ok := m[term]
	return c, ok
}

// EmptyLexicon is a Lexicon with no entries; every term is its own concept.
var EmptyLexicon = MapLexicon(nil)

// DefaultDim is the embedding dimensionality used across UniAsk. (ada-002
// produces 1536 dimensions; 256 preserves the geometry the experiments need
// at a fraction of the memory.)
const DefaultDim = 256

// Embedder converts text to a dense unit vector.
type Embedder interface {
	// Embed returns the (unit-normalized) embedding of text.
	Embed(text string) vector.Vector
	// Dim reports the embedding dimensionality.
	Dim() int
}

// Synth is the deterministic synthetic embedder.
type Synth struct {
	// NoiseScale controls how far a term vector may deviate from its
	// concept vector; smaller values make synonyms more interchangeable.
	NoiseScale float64

	dim      int
	lex      Lexicon
	analyzer *textproc.Analyzer

	mu    sync.RWMutex
	cache map[string]vector.Vector // per-term vectors
}

// NewSynth returns a synthetic embedder of dimensionality dim (DefaultDim
// when dim <= 0) over the given lexicon.
func NewSynth(dim int, lex Lexicon) *Synth {
	if dim <= 0 {
		dim = DefaultDim
	}
	if lex == nil {
		lex = EmptyLexicon
	}
	return &Synth{
		NoiseScale: 0.35,
		dim:        dim,
		lex:        lex,
		analyzer:   textproc.ItalianFull(),
		cache:      make(map[string]vector.Vector),
	}
}

// Dim implements Embedder.
func (s *Synth) Dim() int { return s.dim }

// hashVector derives a deterministic Gaussian unit vector from a string.
func hashVector(s string, dim int) vector.Vector {
	h := fnv.New64a()
	h.Write([]byte(s))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	v := make(vector.Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return vector.Normalize(v)
}

// hasDigit reports whether the term contains a digit, marking it as an
// identifier/code with no distributional semantics.
func hasDigit(term string) bool {
	return strings.ContainsAny(term, "0123456789")
}

// termVector returns the (cached) vector for a single normalized term.
func (s *Synth) termVector(term string) vector.Vector {
	s.mu.RLock()
	v, ok := s.cache[term]
	s.mu.RUnlock()
	if ok {
		return v
	}

	var out vector.Vector
	if hasDigit(term) {
		// Opaque identifier: pure surface hash.
		out = hashVector("term:"+term, s.dim)
	} else if concept, found := s.lex.ConceptOf(term); found {
		base := hashVector("concept:"+concept, s.dim)
		noise := hashVector("term:"+term, s.dim)
		out = make(vector.Vector, s.dim)
		for i := range out {
			out[i] = base[i] + float32(s.NoiseScale)*noise[i]
		}
		vector.Normalize(out)
	} else {
		// Unknown word: its own concept, with the same noise structure so a
		// shared unknown word still aligns between query and document.
		out = hashVector("concept:"+term, s.dim)
	}

	s.mu.Lock()
	s.cache[term] = out
	s.mu.Unlock()
	return out
}

// identifierWeight is the relative weight of identifier-like terms (error
// codes, procedure codes) in a text embedding. Subword tokenizers split
// rare identifiers into many tokens, so they occupy a disproportionate
// share of a real embedding — weighting them up reproduces that behavior
// and makes an exact code match dominate a code query's geometry.
const identifierWeight = 3.0

// Embed implements Embedder: the unit-normalized weighted mean of the term
// vectors of the analyzed text (stop words removed by the analyzer;
// identifier-like terms up-weighted). Embedding the empty string yields the
// zero vector.
func (s *Synth) Embed(text string) vector.Vector {
	terms := s.analyzer.AnalyzeTerms(text)
	acc := make(vector.Vector, s.dim)
	if len(terms) == 0 {
		return acc
	}
	for _, t := range terms {
		tv := s.termVector(t)
		w := float32(1)
		if hasDigit(t) {
			w = identifierWeight
		}
		for i := range acc {
			acc[i] += w * tv[i]
		}
	}
	return vector.Normalize(acc)
}

// Mean returns the unit-normalized mean of the given embeddings (used by
// the MQ2 query-expansion variant, which averages the embeddings of the
// LLM-generated related queries).
func Mean(vecs []vector.Vector, dim int) vector.Vector {
	acc := make(vector.Vector, dim)
	for _, v := range vecs {
		for i := range acc {
			acc[i] += v[i]
		}
	}
	return vector.Normalize(acc)
}
