// Package sse implements the subset of the Server-Sent Events wire format
// the session layer speaks: a thread-safe server-side Writer with per-write
// deadlines (so a stuck client is cut without killing every other healthy
// long-lived stream the way a per-request write deadline would), and an
// incremental client-side Parser for cmd/uniask-chat that is hardened
// against hostile input — bounded event size, no panics, no quadratic
// buffering.
//
// Wire format (the parts of the WHATWG spec both ends use):
//
//	event: citations\n
//	data: {...}\n
//	\n
//
// Comment lines (leading ':') are heartbeats; multiple data: lines
// concatenate with '\n' per the spec.
package sse

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Event is one parsed or to-be-written SSE event.
type Event struct {
	// Name is the event: field ("message" when absent on the wire).
	Name string
	// Data is the event payload (multiple data: lines joined with '\n').
	Data string
}

// DefaultWriteTimeout bounds one event write to a client. A healthy client
// drains a frame in microseconds; one that has stopped reading (but kept
// the TCP connection alive) hits this and the stream is torn down.
const DefaultWriteTimeout = 10 * time.Second

// Writer writes SSE frames to an http.ResponseWriter. Safe for concurrent
// use: the turn pipeline and the heartbeat ticker write from different
// goroutines. Each write arms a fresh per-write deadline on the underlying
// connection (when the server supports it) and flushes.
type Writer struct {
	mu sync.Mutex
	w  http.ResponseWriter
	rc *http.ResponseController
	// timeout is the per-write deadline (0 = DefaultWriteTimeout,
	// negative = none).
	timeout time.Duration
	err     error // first write error; the stream is dead after one
}

// NewWriter prepares w for event streaming: sets the SSE headers and
// returns the writer. writeTimeout 0 means DefaultWriteTimeout, negative
// disables per-write deadlines.
func NewWriter(w http.ResponseWriter, writeTimeout time.Duration) *Writer {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	if writeTimeout == 0 {
		writeTimeout = DefaultWriteTimeout
	}
	return &Writer{w: w, rc: http.NewResponseController(w), timeout: writeTimeout}
}

// Event writes one named event with a single data line. The payload must
// not contain '\n' (encode JSON, which never does).
func (sw *Writer) Event(name, data string) error {
	return sw.write("event: " + name + "\ndata: " + data + "\n\n")
}

// Comment writes a comment frame — the keep-alive heartbeat clients ignore.
func (sw *Writer) Comment(text string) error {
	return sw.write(": " + text + "\n\n")
}

// write emits one frame under the lock with a fresh write deadline.
func (sw *Writer) write(frame string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if sw.timeout > 0 {
		// Per-write, not per-request: the deadline renews with every frame,
		// so an idle-but-healthy stream lives as long as heartbeats flow.
		if err := sw.rc.SetWriteDeadline(time.Now().Add(sw.timeout)); err != nil &&
			!errors.Is(err, http.ErrNotSupported) {
			sw.err = fmt.Errorf("sse: set write deadline: %w", err)
			return sw.err
		}
	}
	if _, err := fmt.Fprint(sw.w, frame); err != nil {
		sw.err = fmt.Errorf("sse: write: %w", err)
		return sw.err
	}
	if err := sw.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		sw.err = fmt.Errorf("sse: flush: %w", err)
		return sw.err
	}
	return nil
}

// Err returns the writer's first error (nil while the stream is healthy).
func (sw *Writer) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// MaxEventSize bounds one event's accumulated size in the Parser. A server
// that streams an unbounded un-terminated frame (or an attacker feeding
// garbage) cannot make the client buffer more than this.
const MaxEventSize = 1 << 20

// ErrEventTooLarge is returned by Feed when one event exceeds MaxEventSize.
var ErrEventTooLarge = errors.New("sse: event exceeds size limit")

// Parser is an incremental SSE frame parser: feed it raw bytes as they
// arrive, collect completed events. The zero value is ready to use.
type Parser struct {
	buf     strings.Builder // current partial line
	name    string
	data    []string
	dataLen int
	sawCR   bool // a bare '\r' ends a line too (spec: CRLF, CR, LF)
}

// Feed consumes a chunk of the stream and returns the events completed by
// it. On ErrEventTooLarge the oversized event is dropped and parsing
// continues with the next event; other input never errors.
func (p *Parser) Feed(chunk []byte) ([]Event, error) {
	var (
		out []Event
		err error
	)
	for _, b := range chunk {
		if p.sawCR && b == '\n' {
			// LF of a CRLF pair: the CR already ended the line.
			p.sawCR = false
			continue
		}
		p.sawCR = false
		switch b {
		case '\r':
			p.sawCR = true
			fallthrough
		case '\n':
			ev, done, lineErr := p.endLine()
			if lineErr != nil {
				err = lineErr
				continue
			}
			if done {
				out = append(out, ev)
			}
		default:
			if p.buf.Len() >= MaxEventSize {
				// Oversized line: drop the event in progress, swallow until
				// the next line ending.
				p.buf.Reset()
				p.name, p.data, p.dataLen = "", nil, 0
				err = ErrEventTooLarge
				continue
			}
			p.buf.WriteByte(b)
		}
	}
	return out, err
}

// endLine processes one completed line; done reports a dispatched event.
func (p *Parser) endLine() (ev Event, done bool, err error) {
	line := p.buf.String()
	p.buf.Reset()
	switch {
	case line == "":
		// Blank line dispatches the pending event (if it has any content).
		if p.name == "" && p.data == nil {
			return Event{}, false, nil
		}
		name := p.name
		if name == "" {
			name = "message"
		}
		ev = Event{Name: name, Data: strings.Join(p.data, "\n")}
		p.name, p.data, p.dataLen = "", nil, 0
		return ev, true, nil
	case strings.HasPrefix(line, ":"):
		// Comment (heartbeat): ignored.
		return Event{}, false, nil
	case strings.HasPrefix(line, "event:"):
		p.name = strings.TrimPrefix(strings.TrimPrefix(line, "event:"), " ")
	case strings.HasPrefix(line, "data:"):
		d := strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")
		if p.dataLen+len(d) > MaxEventSize {
			p.name, p.data, p.dataLen = "", nil, 0
			return Event{}, false, ErrEventTooLarge
		}
		p.data = append(p.data, d)
		p.dataLen += len(d) + 1
	default:
		// Unknown field (id:, retry:, or garbage): ignored per spec.
	}
	return Event{}, false, nil
}
