package sse

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriterFrames(t *testing.T) {
	rec := httptest.NewRecorder()
	w := NewWriter(rec, -1)
	if err := w.Event("citations", `{"documents":[]}`); err != nil {
		t.Fatal(err)
	}
	if err := w.Comment("hb"); err != nil {
		t.Fatal(err)
	}
	if err := w.Event("done", `{"answer":"ok"}`); err != nil {
		t.Fatal(err)
	}
	want := "event: citations\ndata: {\"documents\":[]}\n\n" +
		": hb\n\n" +
		"event: done\ndata: {\"answer\":\"ok\"}\n\n"
	if got := rec.Body.String(); got != want {
		t.Fatalf("wire bytes:\n%q\nwant:\n%q", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestWriterRoundTripsThroughParser(t *testing.T) {
	rec := httptest.NewRecorder()
	w := NewWriter(rec, 0)
	w.Event("token", `{"text":"ciao"}`)
	w.Comment("keepalive")
	w.Event("done", `{}`)

	var p Parser
	events, err := p.Feed(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2 (comment ignored)", len(events))
	}
	if events[0].Name != "token" || events[0].Data != `{"text":"ciao"}` {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[1].Name != "done" {
		t.Fatalf("event 1: %+v", events[1])
	}
}

func TestParserIncrementalFeed(t *testing.T) {
	// Byte-at-a-time delivery must parse identically to one big chunk.
	wire := "event: citations\ndata: {\"n\":1}\n\nevent: token\ndata: hello\n\n"
	var p Parser
	var events []Event
	for i := 0; i < len(wire); i++ {
		evs, err := p.Feed([]byte{wire[i]})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	if len(events) != 2 || events[0].Name != "citations" || events[1].Data != "hello" {
		t.Fatalf("events: %+v", events)
	}
}

func TestParserLineEndings(t *testing.T) {
	for _, tc := range []struct{ name, wire string }{
		{"LF", "event: a\ndata: x\n\n"},
		{"CRLF", "event: a\r\ndata: x\r\n\r\n"},
		{"CR", "event: a\rdata: x\r\r"},
		{"mixed", "event: a\r\ndata: x\n\r"},
	} {
		var p Parser
		events, err := p.Feed([]byte(tc.wire))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(events) != 1 || events[0].Name != "a" || events[0].Data != "x" {
			t.Fatalf("%s: events = %+v", tc.name, events)
		}
	}
}

func TestParserDefaults(t *testing.T) {
	var p Parser
	// No event: field → name "message"; multiple data lines join with \n;
	// unknown fields and comments are ignored.
	events, err := p.Feed([]byte(": comment\nid: 7\ndata: line1\ndata: line2\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Name != "message" || events[0].Data != "line1\nline2" {
		t.Fatalf("event: %+v", events[0])
	}
}

func TestParserOversizedEventDropped(t *testing.T) {
	var p Parser
	big := "data: " + strings.Repeat("x", MaxEventSize+1) + "\n\n"
	_, err := p.Feed([]byte(big))
	if !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// Parsing continues with the next event.
	events, err := p.Feed([]byte("event: ok\ndata: fine\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "ok" {
		t.Fatalf("after oversized: %+v", events)
	}
}

func TestParserBlankLinesNoEvent(t *testing.T) {
	var p Parser
	events, err := p.Feed([]byte("\n\n\r\n\r\r\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank input: events=%v err=%v", events, err)
	}
}

// FuzzSSEParser hardens the client-side parser against a hostile or
// corrupted server: any byte stream, delivered in any chunking, must never
// panic, never loop, and never buffer more than the event-size bound.
func FuzzSSEParser(f *testing.F) {
	f.Add([]byte("event: citations\ndata: {\"documents\":[]}\n\n"), 1)
	f.Add([]byte(": hb\n\nevent: done\r\ndata: {}\r\n\r\n"), 3)
	f.Add([]byte("data: a\rdata: b\r\r"), 2)
	f.Add([]byte("event:\ndata:\n\n"), 1)
	f.Add([]byte("garbage without newlines"), 5)
	f.Add([]byte("\xff\xfe\x00 binary \r\r\n\n"), 1)
	f.Fuzz(func(t *testing.T, wire []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		var whole Parser
		wholeEvents, _ := whole.Feed(wire)

		// Same bytes, chunked delivery: identical events (errors may be
		// reported on different Feed calls, so only events are compared).
		var split Parser
		var splitEvents []Event
		for i := 0; i < len(wire); i += chunk {
			end := i + chunk
			if end > len(wire) {
				end = len(wire)
			}
			evs, _ := split.Feed(wire[i:end])
			splitEvents = append(splitEvents, evs...)
		}
		if len(wholeEvents) != len(splitEvents) {
			t.Fatalf("chunking changed event count: %d vs %d", len(wholeEvents), len(splitEvents))
		}
		for i := range wholeEvents {
			if wholeEvents[i] != splitEvents[i] {
				t.Fatalf("event %d differs: %+v vs %+v", i, wholeEvents[i], splitEvents[i])
			}
		}
		for _, ev := range wholeEvents {
			if ev.Name == "" {
				t.Fatal("dispatched event with empty name")
			}
			if len(ev.Data) > MaxEventSize+1 {
				t.Fatalf("event data exceeds bound: %d", len(ev.Data))
			}
		}
	})
}
