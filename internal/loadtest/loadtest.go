// Package loadtest implements the open-system load test of §9 (Figure 2):
// users keep arriving regardless of how many are already in the system, the
// arrival rate ramps from an initial to a target level over the test
// window, every request carries a fixed token payload, and the LLM service
// — the rate limiter of the whole application — either serves or rejects
// each request. The test runs on a virtual clock, so the paper's 60-minute
// window completes in milliseconds, and reports the failed-query count used
// to size the token quota empirically.
package loadtest

import (
	"context"
	"fmt"
	"strings"
	"time"

	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/vclock"
)

// StageLLM is the stage name load-test requests report under.
const StageLLM = "llm"

// Config describes a load test. The zero value reproduces the paper's run:
// 60 minutes, ramp from 1 to 3 users/second, 7200 tokens per request.
type Config struct {
	// Duration is the test window (default 60 min).
	Duration time.Duration
	// InitialRate and TargetRate are user arrivals per second at the start
	// and end of the window; the ramp is linear (defaults 1 and 3).
	InitialRate, TargetRate float64
	// TokensPerRequest is the fixed request payload (default 7200).
	TokensPerRequest int
	// MaxRequests optionally caps total arrivals (the paper reports 7200
	// requests in the window; 0 = no cap).
	MaxRequests int
	// Observer, when set, receives one "llm" stage report per request
	// (wall-clock latency, token payload as input size, rejections as
	// errors) — the same hook the query pipeline uses, so the monitoring
	// dashboard can aggregate load-test traffic.
	Observer pipeline.Observer
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Minute
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 1
	}
	if c.TargetRate <= 0 {
		c.TargetRate = 3
	}
	if c.TokensPerRequest <= 0 {
		c.TokensPerRequest = 7200
	}
	return c
}

// Bucket is one time slice of the report.
type Bucket struct {
	// Start is the offset of the slice from the test start.
	Start time.Duration
	// Requests and Failures count arrivals and rejections in the slice.
	Requests, Failures int
}

// Report is the outcome of a load test (the data behind Figure 2).
type Report struct {
	Config         Config
	TotalRequests  int
	TotalFailures  int
	TotalTokens    int
	Buckets        []Bucket
	PeakRatePerSec float64
}

// FailureRate is failures/requests.
func (r Report) FailureRate() float64 {
	if r.TotalRequests == 0 {
		return 0
	}
	return float64(r.TotalFailures) / float64(r.TotalRequests)
}

// Run executes the load test against the LLM service on the virtual clock.
// Requests are issued at deterministic arrival times from the linear ramp;
// each request calls the service once and counts rate-limit rejections as
// failures.
func Run(svc *llm.Service, clk *vclock.Virtual, cfg Config) Report {
	cfg = cfg.withDefaults()
	rep := Report{Config: cfg}

	// Precompute arrival offsets from the linear ramp: the instantaneous
	// rate at fraction f of the window is I + (T-I)*f; integrate to get the
	// cumulative arrivals and invert per-arrival.
	dur := cfg.Duration.Seconds()
	rate := func(tSec float64) float64 {
		f := tSec / dur
		return cfg.InitialRate + (cfg.TargetRate-cfg.InitialRate)*f
	}
	var arrivals []float64
	t := 0.0
	for t < dur {
		r := rate(t)
		if r <= 0 {
			break
		}
		t += 1 / r
		if t >= dur {
			break
		}
		arrivals = append(arrivals, t)
		if cfg.MaxRequests > 0 && len(arrivals) >= cfg.MaxRequests {
			break
		}
	}
	rep.PeakRatePerSec = rate(dur)

	// Fixed-size request payload.
	payload := strings.Repeat("tok ", cfg.TokensPerRequest)
	req := llm.Request{
		Messages:  []llm.Message{{Role: llm.User, Content: payload}},
		MaxTokens: 1,
	}

	nBuckets := 12
	bucketLen := cfg.Duration / time.Duration(nBuckets)
	rep.Buckets = make([]Bucket, nBuckets)
	for i := range rep.Buckets {
		rep.Buckets[i].Start = time.Duration(i) * bucketLen
	}

	obs := pipeline.OrNop(cfg.Observer)
	prev := 0.0
	for _, at := range arrivals {
		clk.Advance(time.Duration((at - prev) * float64(time.Second)))
		prev = at
		rep.TotalRequests++
		rep.TotalTokens += cfg.TokensPerRequest
		start := time.Now()
		_, err := svc.Complete(context.Background(), req)
		out := 1
		if err != nil {
			out = 0
		}
		obs.ObserveStage(pipeline.StageInfo{
			Stage: StageLLM, Duration: time.Since(start),
			In: cfg.TokensPerRequest, Out: out, Err: err,
		})
		bi := int(at / dur * float64(nBuckets))
		if bi >= nBuckets {
			bi = nBuckets - 1
		}
		rep.Buckets[bi].Requests++
		if err != nil {
			rep.TotalFailures++
			rep.Buckets[bi].Failures++
		}
	}
	return rep
}

// String renders an ASCII report of requests/failures per time slice.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Load test on the LLM service\n")
	fmt.Fprintf(&b, "window %v, ramp %.0f -> %.0f users/s, %d tokens/request\n",
		r.Config.Duration, r.Config.InitialRate, r.Config.TargetRate, r.Config.TokensPerRequest)
	fmt.Fprintf(&b, "total: %d requests, %d failed (%.1f%%)\n",
		r.TotalRequests, r.TotalFailures, 100*r.FailureRate())
	maxReq := 1
	for _, bk := range r.Buckets {
		if bk.Requests > maxReq {
			maxReq = bk.Requests
		}
	}
	for _, bk := range r.Buckets {
		bar := strings.Repeat("#", bk.Requests*40/maxReq)
		fail := strings.Repeat("x", failBarLen(bk, maxReq))
		fmt.Fprintf(&b, "%6s | %-40s%s %d req, %d fail\n",
			bk.Start.Truncate(time.Minute), bar, fail, bk.Requests, bk.Failures)
	}
	return b.String()
}

func failBarLen(bk Bucket, maxReq int) int {
	n := bk.Failures * 40 / maxReq
	if bk.Failures > 0 && n == 0 {
		n = 1
	}
	return n
}
