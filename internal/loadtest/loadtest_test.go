package loadtest

import (
	"strings"
	"testing"
	"time"

	"uniask/internal/llm"
	"uniask/internal/vclock"
)

var epoch = time.Date(2025, 1, 1, 9, 0, 0, 0, time.UTC)

func runTest(t *testing.T, tokensPerMinute int, cfg Config) Report {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	svc := llm.NewService(llm.NewSim(llm.DefaultBehavior()), llm.ServiceConfig{
		TokensPerMinute: tokensPerMinute,
		BurstTokens:     tokensPerMinute,
		Clock:           clk,
	})
	return Run(svc, clk, cfg)
}

func TestPaperConfiguration(t *testing.T) {
	// 60 min, ramp 1->3 users/s: the cumulative arrivals are ~7200.
	rep := runTest(t, 0, Config{}) // no rate limit
	if rep.TotalRequests < 7100 || rep.TotalRequests > 7300 {
		t.Fatalf("requests = %d, want ~7200", rep.TotalRequests)
	}
	if rep.TotalFailures != 0 {
		t.Fatalf("failures with no limit = %d", rep.TotalFailures)
	}
	if rep.Config.TokensPerRequest != 7200 {
		t.Fatalf("tokens/request = %d", rep.Config.TokensPerRequest)
	}
}

func TestRampShape(t *testing.T) {
	rep := runTest(t, 0, Config{})
	// Request volume must increase across buckets (linear ramp).
	first := rep.Buckets[0].Requests
	last := rep.Buckets[len(rep.Buckets)-1].Requests
	if last <= first {
		t.Fatalf("ramp not increasing: first %d, last %d", first, last)
	}
	// The last bucket should see roughly 3x the arrival rate of the first.
	ratio := float64(last) / float64(first)
	if ratio < 2 || ratio > 3.5 {
		t.Fatalf("peak/initial bucket ratio = %.2f, want ~2.7", ratio)
	}
}

func TestFailuresConcentrateAtPeak(t *testing.T) {
	// With a quota below peak demand, failures must appear only in the
	// later buckets (the paper's test failed 267/7200 at peak).
	rep := runTest(t, 900_000, Config{})
	if rep.TotalFailures == 0 {
		t.Fatal("expected failures under peak demand")
	}
	half := len(rep.Buckets) / 2
	early, late := 0, 0
	for i, b := range rep.Buckets {
		if i < half {
			early += b.Failures
		} else {
			late += b.Failures
		}
	}
	if early > late {
		t.Fatalf("failures not concentrated at peak: early %d, late %d", early, late)
	}
}

func TestFailureRateMonotoneInQuota(t *testing.T) {
	low := runTest(t, 700_000, Config{})
	high := runTest(t, 1_100_000, Config{})
	if low.FailureRate() <= high.FailureRate() {
		t.Fatalf("failure rate not monotone: %.3f vs %.3f", low.FailureRate(), high.FailureRate())
	}
}

func TestMaxRequestsCap(t *testing.T) {
	rep := runTest(t, 0, Config{MaxRequests: 100})
	if rep.TotalRequests != 100 {
		t.Fatalf("requests = %d, want 100", rep.TotalRequests)
	}
}

func TestDeterministic(t *testing.T) {
	a := runTest(t, 900_000, Config{})
	b := runTest(t, 900_000, Config{})
	if a.TotalRequests != b.TotalRequests || a.TotalFailures != b.TotalFailures {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			a.TotalRequests, a.TotalFailures, b.TotalRequests, b.TotalFailures)
	}
}

func TestReportString(t *testing.T) {
	rep := runTest(t, 900_000, Config{})
	out := rep.String()
	for _, want := range []string{"Figure 2", "ramp 1 -> 3", "7200 tokens/request", "failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCustomRamp(t *testing.T) {
	rep := runTest(t, 0, Config{
		Duration:         10 * time.Minute,
		InitialRate:      0.5,
		TargetRate:       1,
		TokensPerRequest: 100,
	})
	// Average rate 0.75/s over 600s ≈ 450 arrivals.
	if rep.TotalRequests < 400 || rep.TotalRequests > 500 {
		t.Fatalf("requests = %d, want ~450", rep.TotalRequests)
	}
	if rep.PeakRatePerSec != 1 {
		t.Fatalf("peak rate = %v", rep.PeakRatePerSec)
	}
}

func TestFailureRateEmpty(t *testing.T) {
	var r Report
	if r.FailureRate() != 0 {
		t.Fatal("empty report failure rate != 0")
	}
}
