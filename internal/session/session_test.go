package session

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"uniask/internal/vclock"
)

func newVirtualStore(cfg Config) (*Store, *vclock.Virtual) {
	clk := vclock.NewVirtual(time.Unix(1700000000, 0))
	cfg.Clock = clk
	return NewStore(cfg), clk
}

func TestCreateGetAppend(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	sess, err := s.Create("banca", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID == "" || sess.Tenant != "banca" {
		t.Fatalf("created session %+v", sess)
	}
	if err := s.AppendTurn("banca", sess.ID, Turn{Question: "q1", Answer: "a1"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("banca", sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Turns) != 1 || got.Turns[0].Question != "q1" {
		t.Fatalf("turns = %+v", got.Turns)
	}
	// Snapshots are deep copies: mutating one must not touch the store.
	got.Turns[0].Answer = "mutated"
	again, _ := s.Get("banca", sess.ID)
	if again.Turns[0].Answer != "a1" {
		t.Fatal("snapshot aliases store state")
	}
}

func TestTenantIsolation(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	sess, _ := s.Create("banca-a", 0)
	if _, err := s.Get("banca-b", sess.ID); !errors.Is(err, ErrWrongTenant) {
		t.Fatalf("cross-tenant get: %v", err)
	}
	if err := s.AppendTurn("banca-b", sess.ID, Turn{}); !errors.Is(err, ErrWrongTenant) {
		t.Fatalf("cross-tenant append: %v", err)
	}
}

func TestTTLExpiryOnVirtualClock(t *testing.T) {
	s, clk := newVirtualStore(Config{TTL: 10 * time.Minute})
	sess, _ := s.Create("banca", 0)

	// Touches inside the TTL keep the session alive indefinitely.
	for i := 0; i < 5; i++ {
		clk.Advance(9 * time.Minute)
		if _, err := s.Get("banca", sess.ID); err != nil {
			t.Fatalf("touch %d: %v", i, err)
		}
	}
	// One idle gap past the TTL expires it.
	clk.Advance(10*time.Minute + time.Second)
	if _, err := s.Get("banca", sess.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired get: %v", err)
	}
	if st := s.Stats(); st.Expired != 1 || st.Live != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
}

func TestNegativeTTLDisablesExpiry(t *testing.T) {
	s, clk := newVirtualStore(Config{TTL: -1})
	sess, _ := s.Create("banca", 0)
	clk.Advance(1000 * time.Hour)
	if _, err := s.Get("banca", sess.ID); err != nil {
		t.Fatalf("get after 1000h with expiry disabled: %v", err)
	}
}

func TestGlobalLRUEviction(t *testing.T) {
	s, clk := newVirtualStore(Config{MaxSessions: 3})
	ids := make([]string, 4)
	for i := 0; i < 3; i++ {
		sess, err := s.Create("banca", 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = sess.ID
		clk.Advance(time.Second)
	}
	// Touch the oldest so the middle one becomes LRU.
	if _, err := s.Get("banca", ids[0]); err != nil {
		t.Fatal(err)
	}
	sess, err := s.Create("banca", 0)
	if err != nil {
		t.Fatal(err)
	}
	ids[3] = sess.ID

	if _, err := s.Get("banca", ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU session should be evicted: %v", err)
	}
	for _, id := range []string{ids[0], ids[2], ids[3]} {
		if _, err := s.Get("banca", id); err != nil {
			t.Fatalf("session %s should survive: %v", id, err)
		}
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted = %d", st.Evicted)
	}
}

func TestPerTenantBudgetRejectsNotEvicts(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	var first Session
	for i := 0; i < 2; i++ {
		sess, err := s.Create("capped", 2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sess
		}
	}
	// At the cap: creation is rejected, and critically the tenant's live
	// conversations are untouched (a quota must not become data loss).
	if _, err := s.Create("capped", 2); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("over-budget create: %v", err)
	}
	if _, err := s.Get("capped", first.ID); err != nil {
		t.Fatalf("existing session lost on rejected create: %v", err)
	}
	// Another tenant is unaffected by the first one's budget.
	if _, err := s.Create("other", 2); err != nil {
		t.Fatal(err)
	}
}

func TestPerTenantBudgetFreesOnExpiry(t *testing.T) {
	s, clk := newVirtualStore(Config{TTL: time.Minute})
	if _, err := s.Create("banca", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("banca", 1); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("expected budget rejection, got %v", err)
	}
	clk.Advance(2 * time.Minute)
	if _, err := s.Create("banca", 1); err != nil {
		t.Fatalf("create after expiry freed the budget: %v", err)
	}
}

func TestMaxTurnsBounded(t *testing.T) {
	s, _ := newVirtualStore(Config{MaxTurns: 3})
	sess, _ := s.Create("banca", 0)
	for i := 0; i < 10; i++ {
		if err := s.AppendTurn("banca", sess.ID, Turn{Question: fmt.Sprintf("q%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Get("banca", sess.ID)
	if len(got.Turns) != 3 {
		t.Fatalf("retained %d turns, want 3", len(got.Turns))
	}
	if got.Turns[2].Question != "q9" {
		t.Fatalf("newest turn = %q", got.Turns[2].Question)
	}
}

func TestHistoryWindow(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	sess, _ := s.Create("banca", 0)
	for i := 0; i < HistoryWindow+3; i++ {
		s.AppendTurn("banca", sess.ID, Turn{Question: fmt.Sprintf("q%d", i), Answer: fmt.Sprintf("a%d", i)})
	}
	got, _ := s.Get("banca", sess.ID)
	h := got.History()
	if len(h) != HistoryWindow {
		t.Fatalf("history window = %d, want %d", len(h), HistoryWindow)
	}
	if h[len(h)-1].Question != fmt.Sprintf("q%d", HistoryWindow+2) {
		t.Fatalf("newest history entry = %q", h[len(h)-1].Question)
	}
}

func TestStreamCounters(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	s.StreamOpened()
	s.StreamOpened()
	s.StreamHeartbeat()
	s.StreamClosed(false)
	s.StreamClosed(true)
	st := s.StreamStats()
	if st.Open != 0 || st.Opened != 2 || st.Closed != 2 || st.Heartbeats != 1 || st.Disconnects != 1 {
		t.Fatalf("stream stats: %+v", st)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s, _ := newVirtualStore(Config{})
	a, _ := s.Create("banca-a", 0)
	s.Create("banca-b", 0)
	s.AppendTurn("banca-a", a.ID, Turn{Question: "q"})
	st := s.Stats()
	if st.Live != 2 || st.Turns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PerTenant["banca-a"] != 1 || st.PerTenant["banca-b"] != 1 {
		t.Fatalf("per-tenant: %+v", st.PerTenant)
	}
}
