// Package session is UniAsk's conversational layer: a bounded,
// tenant-scoped store of multi-turn conversations. Each session holds the
// turn history — question, answer, and the cited documents of every turn —
// that the history-aware query rewrite (llm.BuildRewritePrompt) and the
// click-feedback loop consume. The store is memory-bounded twice over:
// sessions expire after a TTL of inactivity, and a global LRU budget evicts
// the least-recently-touched session when the deployment as a whole holds
// too many. Both run on an injectable vclock.Clock so expiry is testable
// without sleeping.
//
// The store does not talk to the engine: the server layer runs turns
// through core.Engine.AskConversational and records the outcome here. That
// keeps the dependency arrow pointing one way (server → session, server →
// core) and the store trivially reusable by the chat CLI's in-process
// server.
package session

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uniask/internal/llm"
	"uniask/internal/vclock"
)

// DefaultTTL is how long an idle session survives before expiring.
const DefaultTTL = 30 * time.Minute

// DefaultMaxSessions is the global session budget used when Config leaves
// it zero.
const DefaultMaxSessions = 1024

// DefaultTenantSessions is the per-tenant live-session cap the server
// applies when the tenant's overrides entry does not set maxSessions.
const DefaultTenantSessions = 64

// DefaultMaxTurns bounds how many turns one session retains; older turns
// fall off the front (the rewrite prompt only ever consumes the recent
// tail anyway).
const DefaultMaxTurns = 32

// HistoryWindow is how many recent turns feed the rewrite prompt. Short on
// purpose: anaphora resolves against what was just said, and a bounded
// window keeps the rewrite call's token cost flat as conversations grow.
const HistoryWindow = 4

// TurnDoc is one cited document of a turn, kept so a later feedback call
// can resolve the click without re-running retrieval.
type TurnDoc struct {
	// ChunkID is the cited chunk in the index.
	ChunkID string
	// ParentID is the KB document the chunk belongs to.
	ParentID string
	// Title is the chunk's title at answer time.
	Title string
}

// Turn is one completed question/answer exchange.
type Turn struct {
	// Question is the user's raw question as asked.
	Question string
	// RewrittenQuery is the standalone query retrieval ran ("" when no
	// rewrite happened or it was shed).
	RewrittenQuery string
	// Answer is the answer shown to the user.
	Answer string
	// Documents are the documents shown alongside the answer, ranked.
	Documents []TurnDoc
	// TraceID links the turn to its span tree in /api/traces.
	TraceID string
	// Degraded and DegradedParts mirror the engine response's flags.
	Degraded      bool
	DegradedParts []string
	// At is the store-clock time the turn completed.
	At time.Time
}

// Session is one conversation. Snapshot value — the store hands out copies,
// never aliases into its own state.
type Session struct {
	// ID is the opaque session identifier.
	ID string
	// Tenant is the owning tenant.
	Tenant string
	// Turns is the retained history, oldest first.
	Turns []Turn
	// CreatedAt and LastActive are store-clock times.
	CreatedAt  time.Time
	LastActive time.Time
}

// History converts the session's recent turns into the rewrite prompt's
// exchange list (oldest first, at most HistoryWindow turns).
func (s *Session) History() []llm.Exchange {
	turns := s.Turns
	if len(turns) > HistoryWindow {
		turns = turns[len(turns)-HistoryWindow:]
	}
	out := make([]llm.Exchange, len(turns))
	for i, t := range turns {
		out[i] = llm.Exchange{Question: t.Question, Answer: t.Answer}
	}
	return out
}

// Config parameterizes a Store.
type Config struct {
	// TTL is the idle lifetime of a session (0 = DefaultTTL; negative
	// disables expiry).
	TTL time.Duration
	// MaxSessions is the global LRU budget (0 = DefaultMaxSessions).
	MaxSessions int
	// MaxTurns bounds the retained history per session (0 =
	// DefaultMaxTurns).
	MaxTurns int
	// Clock drives expiry (nil = the wall clock).
	Clock vclock.Clock
}

// ErrNotFound is returned when a session ID does not exist (or has
// expired/been evicted — indistinguishable by design).
var ErrNotFound = fmt.Errorf("session: not found")

// ErrWrongTenant is returned when a session exists but belongs to a
// different tenant: one tenant must never read or extend another's
// conversation.
var ErrWrongTenant = fmt.Errorf("session: wrong tenant")

// ErrTenantBudget is returned by Create when the tenant is at its
// per-tenant session cap.
var ErrTenantBudget = fmt.Errorf("session: tenant session budget exhausted")

// entry is the store's mutable session record.
type entry struct {
	sess Session
	el   *list.Element // position in the LRU (front = most recent)
}

// StreamStats are the live-stream counters the dashboard's session gauge
// and the stuck-streams runbook read.
type StreamStats struct {
	// Open is the number of SSE streams currently open.
	Open int64
	// Opened and Closed count streams over the store's lifetime.
	Opened uint64
	Closed uint64
	// Heartbeats counts keep-alive comments written to idle streams.
	Heartbeats uint64
	// Disconnects counts streams that ended because the client went away
	// mid-turn (context canceled before the terminal event).
	Disconnects uint64
}

// Store holds the live sessions. Safe for concurrent use.
type Store struct {
	cfg Config

	mu        sync.Mutex
	entries   map[string]*entry
	lru       *list.List // of session IDs; front = most recently used
	seq       uint64
	expired   uint64
	evicted   uint64
	perTenant map[string]int // live sessions per tenant

	// stream counters live outside mu: the SSE layer bumps them on hot
	// write paths.
	open        atomic.Int64
	opened      atomic.Uint64
	closed      atomic.Uint64
	heartbeats  atomic.Uint64
	disconnects atomic.Uint64
}

// NewStore creates a session store.
func NewStore(cfg Config) *Store {
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxTurns <= 0 {
		cfg.MaxTurns = DefaultMaxTurns
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	return &Store{
		cfg:       cfg,
		entries:   make(map[string]*entry),
		lru:       list.New(),
		perTenant: make(map[string]int),
	}
}

// Create opens a new session for tenant. maxForTenant caps the tenant's
// live sessions (0 = no per-tenant cap); at the cap the tenant's
// least-recently-active session is NOT evicted — creation fails with
// ErrTenantBudget, because silently dropping another live conversation to
// admit a new one turns a quota into data loss.
func (s *Store) Create(tenantID string, maxForTenant int) (Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	s.expireLocked(now)
	if maxForTenant > 0 && s.perTenant[tenantID] >= maxForTenant {
		return Session{}, ErrTenantBudget
	}
	s.seq++
	id := fmt.Sprintf("s%08x-%s", s.seq, strconv.FormatInt(now.UnixNano()&0xffffff, 16))
	e := &entry{sess: Session{
		ID: id, Tenant: tenantID, CreatedAt: now, LastActive: now,
	}}
	e.el = s.lru.PushFront(id)
	s.entries[id] = e
	s.perTenant[tenantID]++
	// Global budget: evict the least-recently-active session, whoever owns
	// it. The evicted conversation is gone — the next turn against its ID
	// gets ErrNotFound and the client starts a fresh session.
	for s.lru.Len() > s.cfg.MaxSessions {
		back := s.lru.Back()
		s.removeLocked(back.Value.(string), &s.evicted)
	}
	return e.sess.clone(), nil
}

// Get returns a snapshot of the session, refreshing its recency. The
// tenant must match the session's owner.
func (s *Store) Get(tenantID, id string) (Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.touchLocked(tenantID, id)
	if err != nil {
		return Session{}, err
	}
	return e.sess.clone(), nil
}

// AppendTurn records a completed turn, refreshing the session's recency.
func (s *Store) AppendTurn(tenantID, id string, t Turn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.touchLocked(tenantID, id)
	if err != nil {
		return err
	}
	t.At = s.cfg.Clock.Now()
	e.sess.Turns = append(e.sess.Turns, t)
	if len(e.sess.Turns) > s.cfg.MaxTurns {
		e.sess.Turns = e.sess.Turns[len(e.sess.Turns)-s.cfg.MaxTurns:]
	}
	return nil
}

// touchLocked resolves an id for tenantID after expiry, bumps recency, and
// returns the live entry. Caller holds s.mu.
func (s *Store) touchLocked(tenantID, id string) (*entry, error) {
	now := s.cfg.Clock.Now()
	s.expireLocked(now)
	e, ok := s.entries[id]
	if !ok {
		return nil, ErrNotFound
	}
	if e.sess.Tenant != tenantID {
		return nil, ErrWrongTenant
	}
	e.sess.LastActive = now
	s.lru.MoveToFront(e.el)
	return e, nil
}

// expireLocked drops every session idle past the TTL. Caller holds s.mu.
// Lazy expiry on access keeps the store goroutine-free: with a virtual
// clock there is nothing to leak and nothing to race.
func (s *Store) expireLocked(now time.Time) {
	if s.cfg.TTL < 0 {
		return
	}
	// Walk from the LRU back: the first fresh session ends the scan.
	for {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := s.entries[back.Value.(string)]
		if now.Sub(e.sess.LastActive) <= s.cfg.TTL {
			return
		}
		s.removeLocked(e.sess.ID, &s.expired)
	}
}

// removeLocked deletes a session and bumps the given counter.
func (s *Store) removeLocked(id string, counter *uint64) {
	e, ok := s.entries[id]
	if !ok {
		return
	}
	s.lru.Remove(e.el)
	delete(s.entries, id)
	if n := s.perTenant[e.sess.Tenant] - 1; n > 0 {
		s.perTenant[e.sess.Tenant] = n
	} else {
		delete(s.perTenant, e.sess.Tenant)
	}
	*counter++
}

// clone deep-copies the snapshot the store hands out.
func (s Session) clone() Session {
	out := s
	out.Turns = make([]Turn, len(s.Turns))
	copy(out.Turns, s.Turns)
	for i := range out.Turns {
		docs := make([]TurnDoc, len(out.Turns[i].Documents))
		copy(docs, out.Turns[i].Documents)
		out.Turns[i].Documents = docs
		parts := make([]string, len(out.Turns[i].DegradedParts))
		copy(parts, out.Turns[i].DegradedParts)
		out.Turns[i].DegradedParts = parts
	}
	return out
}

// Stats is a point-in-time view of the store for the dashboard gauge.
type Stats struct {
	// Live is the number of live sessions; PerTenant breaks it down.
	Live      int
	PerTenant map[string]int
	// Turns is the total retained turn count across live sessions.
	Turns int
	// Expired and Evicted count sessions dropped by TTL and by the global
	// LRU budget respectively.
	Expired uint64
	Evicted uint64
	// Streams are the live SSE-stream counters.
	Streams StreamStats
}

// Stats snapshots the store (expiring stale sessions first, so the gauge
// never reports sessions that would vanish on their next touch).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	s.expireLocked(s.cfg.Clock.Now())
	st := Stats{
		Live:      len(s.entries),
		PerTenant: make(map[string]int, len(s.perTenant)),
		Expired:   s.expired,
		Evicted:   s.evicted,
	}
	for t, n := range s.perTenant {
		st.PerTenant[t] = n
	}
	for _, e := range s.entries {
		st.Turns += len(e.sess.Turns)
	}
	s.mu.Unlock()
	st.Streams = s.StreamStats()
	return st
}

// StreamStats snapshots the live-stream counters.
func (s *Store) StreamStats() StreamStats {
	return StreamStats{
		Open:        s.open.Load(),
		Opened:      s.opened.Load(),
		Closed:      s.closed.Load(),
		Heartbeats:  s.heartbeats.Load(),
		Disconnects: s.disconnects.Load(),
	}
}

// StreamOpened records an SSE stream opening.
func (s *Store) StreamOpened() { s.open.Add(1); s.opened.Add(1) }

// StreamClosed records a stream ending; disconnected marks a client that
// went away before the terminal event.
func (s *Store) StreamClosed(disconnected bool) {
	s.open.Add(-1)
	s.closed.Add(1)
	if disconnected {
		s.disconnects.Add(1)
	}
}

// StreamHeartbeat records one keep-alive comment written to an idle stream.
func (s *Store) StreamHeartbeat() { s.heartbeats.Add(1) }
