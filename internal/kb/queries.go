package kb

import (
	"fmt"
	"math/rand"
	"strings"
)

// QueryKind classifies evaluation queries.
type QueryKind int

const (
	// HumanQuery is a natural-language question authored by a domain expert.
	HumanQuery QueryKind = iota
	// KeywordQuery is a short keyword query sampled from the previous
	// engine's log.
	KeywordQuery
	// ErrorCodeQuery asks about a specific error code.
	ErrorCodeQuery
	// OutOfScopeQuery is unrelated to the knowledge base (guardrail test).
	OutOfScopeQuery
	// SpecialQuery exercises robustness cases (case, missing words, dups).
	SpecialQuery
)

// Query is one evaluation question with its ground truth.
type Query struct {
	// ID identifies the query within its dataset.
	ID string
	// Text is the query string presented to the system.
	Text string
	// Kind is the query class.
	Kind QueryKind
	// Relevant is the set of relevant KB document ids (empty for
	// out-of-scope queries).
	Relevant []string
	// Answer is the ground-truth natural-language answer (human questions
	// only; the paper collected no answers for keyword queries).
	Answer string
}

// Dataset is a named list of queries.
type Dataset struct {
	Name    string
	Queries []Query
}

// Split divides the dataset into validation (2/3) and test (1/3) parts, as
// the paper does. The split is positional after a seeded shuffle, so it is
// deterministic for a given dataset.
func (d Dataset) Split(seed int64) (validation, test Dataset) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := make([]Query, len(d.Queries))
	copy(shuffled, d.Queries)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := len(shuffled) * 2 / 3
	validation = Dataset{Name: d.Name + "-validation", Queries: shuffled[:cut]}
	test = Dataset{Name: d.Name + "-test", Queries: shuffled[cut:]}
	return validation, test
}

var humanTemplates = []string{
	"Come posso %A %E %F?",
	"Che cosa devo fare per %A %E %F?",
	"È possibile %A %E %F?",
	"In che modo si può %A %E?",
	"Quali sono i passaggi per %A %E %F?",
	"Mi serve sapere come %A %E %F, come procedo?",
	"Un cliente chiede di %A %E %F: qual è la procedura corretta?",
	"Vorrei capire come %A %E, potete aiutarmi?",
	"Qual è la prassi per %A %E %F?",
	"Cosa prevede la procedura quando bisogna %A %E %F?",
}

var errorQuestionTemplates = []string{
	"Cosa devo fare quando compare l'errore %C?",
	"Come si risolve l'errore %C durante %A %E?",
	"Il sistema segnala %C, come procedo?",
	"Che significato ha il codice %C e come si gestisce?",
}

var outOfScopeQuestions = []string{
	"Che tempo farà domani a Milano?",
	"Qual è la ricetta della carbonara?",
	"Chi ha vinto l'ultimo campionato di calcio?",
	"Dove si compra un biglietto del treno per Roma?",
	"Come si coltivano i pomodori sul balcone?",
	"Qual è la capitale dell'Australia?",
	"Consigliami un film da vedere stasera.",
	"Scrivi una poesia sull'autunno.",
	"Qual è il miglior ristorante vicino all'ufficio?",
	"Come posso migliorare il mio inglese?",
	"Dammi i numeri vincenti del lotto di ieri.",
	"Qual è il senso della vita?",
	"Raccontami una barzelletta divertente.",
	"Come si ripara una bicicletta con la gomma a terra?",
	"A che ora inizia il film al cinema in centro?",
	"Che esercizi posso fare per il mal di schiena?",
	"Dove conviene andare in vacanza ad agosto?",
	"Come si prepara un buon caffè con la moka?",
	"Qual è la distanza tra la terra e la luna?",
	"Suggeriscimi un libro giallo da leggere.",
}

// SynonymProbability is the chance that a concept in a human question is
// rendered with a colloquial synonym instead of the editorial canonical
// form. It calibrates the lexical gap between questions and documents; at
// the default, the previous exact-match engine serves roughly one human
// question in five — the paper reports 19.1%.
const SynonymProbability = 0.65

// render returns a concept surface form: synonym with probability p,
// canonical otherwise.
func render(rng *rand.Rand, c Concept, p float64) string {
	if rng.Float64() < p {
		return c.Synonym(rng)
	}
	return c.Canonical()
}

// HumanDataset generates n expert-authored natural-language questions with
// ground-truth documents and answers (paper: 2700).
func (c *Corpus) HumanDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{Name: "human"}
	for i := 0; i < n; i++ {
		d := c.Docs[rng.Intn(len(c.Docs))]
		var text string
		if d.Kind == ErrorDoc && rng.Float64() < 0.5 {
			tpl := pick(rng, errorQuestionTemplates)
			text = fill(tpl, render(rng, d.action, SynonymProbability),
				render(rng, d.entity, SynonymProbability), "", "", "", d.Code)
		} else {
			tpl := pick(rng, humanTemplates)
			facet := render(rng, d.facet, SynonymProbability)
			if rng.Float64() < 0.3 {
				facet = "" // not every question mentions the facet
			}
			text = fill(tpl, render(rng, d.action, SynonymProbability),
				render(rng, d.entity, SynonymProbability), facet, "", "", "")
		}
		// Expert ground truth is authored while looking at the target page:
		// the linked documents are the ones equivalent to it (same facet),
		// even when the question itself omits the facet.
		relevant := c.relevantFor(d, text, true)
		ds.Queries = append(ds.Queries, Query{
			ID:       fmt.Sprintf("h%04d", i),
			Text:     text,
			Kind:     HumanQuery,
			Relevant: relevant,
			Answer:   d.AnswerSentence,
		})
	}
	return ds
}

// KeywordDataset generates n keyword-style queries mimicking the previous
// engine's log (paper: 800): one to three exact editorial terms, or a bare
// error code. Employees learned to query the old engine this way.
func (c *Corpus) KeywordDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{Name: "keyword"}
	for i := 0; i < n; i++ {
		d := c.Docs[rng.Intn(len(c.Docs))]
		var text string
		switch {
		case d.Kind == ErrorDoc && rng.Float64() < 0.6:
			if rng.Float64() < 0.5 {
				text = d.Code
			} else {
				text = "errore " + d.Code
			}
		case rng.Float64() < 0.5:
			text = d.entity.Canonical()
		default:
			text = d.action.Canonical() + " " + d.entity.Canonical()
		}
		ds.Queries = append(ds.Queries, Query{
			ID:       fmt.Sprintf("k%04d", i),
			Text:     text,
			Kind:     KeywordQuery,
			Relevant: c.relevantFor(d, text, false),
		})
	}
	return ds
}

// relevantFor computes the ground-truth set for a query targeting doc d.
// Error-code queries are satisfied only by the exact code's document; all
// other queries are satisfied by any member of the near-duplicate cluster,
// plus other documents about the same entity+action pair (a generic
// question has multiple valid sources, matching the paper's "one or more
// links" ground truth). Human questions carry facet-specific truth (the
// expert links the pages equivalent to the target document); keyword-log
// queries carry broad entity+action truth, since a bare keyword asks for
// any page on the topic.
func (c *Corpus) relevantFor(d Doc, queryText string, facetSpecific bool) []string {
	if d.Code != "" && strings.Contains(queryText, d.Code) {
		return []string{d.ID}
	}
	set := map[string]bool{d.ID: true}
	for _, id := range c.Cluster(d.ID) {
		set[id] = true
	}
	// Same-topic documents answering the same entity+action question.
	for _, other := range c.Docs {
		if other.entity.ID == d.entity.ID && other.action.ID == d.action.ID &&
			other.Kind == d.Kind &&
			(!facetSpecific || other.facet.ID == d.facet.ID) {
			set[other.ID] = true
		}
	}
	out := make([]string, 0, len(set))
	for _, doc := range c.Docs { // stable order
		if set[doc.ID] {
			out = append(out, doc.ID)
		}
	}
	return out
}

// OutOfScopeDataset returns n questions unrelated to the KB (guardrail and
// UAT material). They carry no relevant documents.
func (c *Corpus) OutOfScopeDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{Name: "out-of-scope"}
	for i := 0; i < n; i++ {
		ds.Queries = append(ds.Queries, Query{
			ID:   fmt.Sprintf("o%04d", i),
			Text: outOfScopeQuestions[rng.Intn(len(outOfScopeQuestions))],
			Kind: OutOfScopeQuery,
		})
	}
	return ds
}

// ErrorCodeDataset returns n queries consisting of bare or prefixed error
// codes drawn from the corpus' error documents.
func (c *Corpus) ErrorCodeDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var errorDocs []Doc
	for _, d := range c.Docs {
		if d.Code != "" {
			errorDocs = append(errorDocs, d)
		}
	}
	ds := Dataset{Name: "error-code"}
	if len(errorDocs) == 0 {
		return ds
	}
	for i := 0; i < n; i++ {
		d := errorDocs[rng.Intn(len(errorDocs))]
		text := d.Code
		if rng.Float64() < 0.4 {
			text = "errore " + d.Code
		}
		ds.Queries = append(ds.Queries, Query{
			ID:       fmt.Sprintf("e%04d", i),
			Text:     text,
			Kind:     ErrorCodeQuery,
			Relevant: []string{d.ID},
		})
	}
	return ds
}

// CornerCaseDataset mimics the SMEs' catalogue of questions for which a
// wrong answer would be unacceptable: precise error codes, compliance
// topics and out-of-scope traps (paper: 500 entries).
func (c *Corpus) CornerCaseDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	errs := c.ErrorCodeDataset(n/2, seed+1)
	human := c.HumanDataset(n-n/2-n/10, seed+2)
	oos := c.OutOfScopeDataset(n/10, seed+3)
	ds := Dataset{Name: "corner-cases"}
	ds.Queries = append(ds.Queries, errs.Queries...)
	ds.Queries = append(ds.Queries, human.Queries...)
	ds.Queries = append(ds.Queries, oos.Queries...)
	rng.Shuffle(len(ds.Queries), func(i, j int) {
		ds.Queries[i], ds.Queries[j] = ds.Queries[j], ds.Queries[i]
	})
	for i := range ds.Queries {
		ds.Queries[i].ID = fmt.Sprintf("c%04d", i)
	}
	return ds
}

// UATDataset assembles the 210-question pre-deployment mix of §8:
// 70 human questions close to frequent log queries, 50 SME questions,
// 50 frequent keyword queries, 10 out-of-scope, 20 error codes and
// 10 special cases (case changes, missing words, duplicates). Sizes scale
// proportionally when total differs from 210.
func (c *Corpus) UATDataset(total int, seed int64) Dataset {
	if total <= 0 {
		total = 210
	}
	scale := func(k int) int {
		n := k * total / 210
		if n < 1 {
			n = 1
		}
		return n
	}
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{Name: "uat"}

	human := c.HumanDataset(scale(70)+scale(50), seed+11).Queries
	ds.Queries = append(ds.Queries, human...)
	ds.Queries = append(ds.Queries, c.KeywordDataset(scale(50), seed+12).Queries...)
	ds.Queries = append(ds.Queries, c.OutOfScopeDataset(scale(10), seed+13).Queries...)
	ds.Queries = append(ds.Queries, c.ErrorCodeDataset(scale(20), seed+14).Queries...)

	// Special cases derived from human questions: upper case, word dropped,
	// duplicated query.
	base := c.HumanDataset(scale(10), seed+15).Queries
	for i, q := range base {
		switch i % 3 {
		case 0:
			q.Text = strings.ToUpper(q.Text)
		case 1:
			words := strings.Fields(q.Text)
			if len(words) > 3 {
				drop := 1 + rng.Intn(len(words)-2)
				words = append(words[:drop], words[drop+1:]...)
				q.Text = strings.Join(words, " ")
			}
		case 2:
			q.Text = q.Text + " " + q.Text
		}
		q.Kind = SpecialQuery
		ds.Queries = append(ds.Queries, q)
	}
	for i := range ds.Queries {
		ds.Queries[i].ID = fmt.Sprintf("u%04d", i)
	}
	return ds
}
