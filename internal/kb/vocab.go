// Package kb generates the synthetic Italian banking knowledge base and the
// evaluation query datasets that substitute for UniCredit's proprietary
// data. The generator controls exactly the corpus properties the paper
// reports and the evaluation depends on:
//
//   - ~59k short HTML documents (average ≈248 words, ≈7.6 paragraphs) over
//     banking applications, governance, general processes and technical
//     topics;
//   - heavy near-duplication among procedure/error documents (identical
//     content except for specific error or procedure codes);
//   - domain jargon (application names, error codes) with no published
//     vocabulary;
//   - a paraphrase gap between how editors write documents (formal,
//     canonical terms) and how employees ask natural-language questions
//     (colloquial synonyms) — the gap that makes the previous exact-keyword
//     engine fail on 81% of human questions while hybrid retrieval serves
//     them all.
package kb

import (
	"fmt"
	"math/rand"

	"uniask/internal/embedding"
	"uniask/internal/textproc"
)

// ConceptKind classifies vocabulary concepts.
type ConceptKind int

const (
	// Entity concepts are banking objects (accounts, cards, transfers).
	Entity ConceptKind = iota
	// Action concepts are operations performed on entities.
	Action
	// Facet concepts qualify a scenario (abroad, online, urgent...).
	Facet
	// Jargon concepts are internal application/product names.
	Jargon
)

// Concept is one semantic unit of the vocabulary. Variants[0] is the
// canonical surface form the document editors use; the remaining variants
// are the colloquial synonyms employees use in questions.
type Concept struct {
	ID       string
	Kind     ConceptKind
	Variants []string
}

// Canonical returns the editorial surface form.
func (c Concept) Canonical() string { return c.Variants[0] }

// Synonym returns a non-canonical variant drawn with rng, or the canonical
// form when the concept has no synonyms.
func (c Concept) Synonym(rng *rand.Rand) string {
	if len(c.Variants) < 2 {
		return c.Variants[0]
	}
	return c.Variants[1+rng.Intn(len(c.Variants)-1)]
}

// Vocabulary is the full concept inventory of a generated corpus.
type Vocabulary struct {
	Entities []Concept
	Actions  []Concept
	Facets   []Concept
	Jargon   []Concept
}

// curated entity concepts: banking objects with editorial canonical form
// first and colloquial synonyms after.
var entityData = [][]string{
	{"conto corrente", "conto", "rapporto bancario"},
	{"carta di credito", "carta", "tessera di pagamento"},
	{"carta di debito", "bancomat", "tessera bancomat"},
	{"bonifico", "trasferimento", "disposizione di pagamento"},
	{"mutuo", "finanziamento casa", "prestito immobiliare"},
	{"prestito personale", "finanziamento", "credito al consumo"},
	{"assegno", "titolo di pagamento"},
	{"deposito titoli", "dossier titoli", "portafoglio investimenti"},
	{"fido", "affidamento", "linea di credito"},
	{"domiciliazione", "addebito diretto", "rid"},
	{"estratto conto", "rendiconto", "riepilogo movimenti"},
	{"iban", "coordinate bancarie", "codice iban"},
	{"firma digitale", "firma elettronica", "sottoscrizione digitale"},
	{"home banking", "banca online", "internet banking"},
	{"sportello automatico", "atm", "cassa automatica"},
	{"libretto di risparmio", "libretto", "deposito a risparmio"},
	{"polizza assicurativa", "assicurazione", "copertura assicurativa"},
	{"cassetta di sicurezza", "cassetta", "custodia valori"},
	{"delega operativa", "delega", "procura"},
	{"pos", "terminale di pagamento", "lettore carte"},
	{"anticipo fatture", "anticipo crediti", "smobilizzo"},
	{"piano di ammortamento", "piano rate", "rateizzazione"},
	{"garanzia fideiussoria", "fideiussione", "garanzia personale"},
	{"segnalazione", "ticket", "richiesta di assistenza"},
	{"password dispositiva", "codice dispositivo", "pin dispositivo"},
	{"credenziali di accesso", "password", "dati di accesso"},
	{"token di sicurezza", "token", "chiavetta otp"},
	{"profilo utente", "utenza", "account personale"},
	{"filiale", "agenzia", "succursale"},
	{"cliente corporate", "azienda cliente", "impresa"},
	{"valuta estera", "divisa", "moneta straniera"},
	{"commissione", "costo operativo", "spesa di gestione"},
	{"tasso di interesse", "tasso", "rendimento"},
	{"rata", "quota periodica", "pagamento rateale"},
	{"plafond", "massimale", "limite di spesa"},
	{"contabilità interna", "scritture contabili", "registrazioni"},
	{"normativa antiriciclaggio", "antiriciclaggio", "disciplina aml"},
	{"privacy", "protezione dati", "riservatezza"},
	{"dispositivo mobile", "smartphone", "telefono aziendale"},
	{"posta certificata", "pec", "mail certificata"},
	{"fascicolo elettronico", "pratica digitale", "dossier elettronico"},
	{"censimento anagrafico", "anagrafica", "dati anagrafici"},
}

// curated action concepts.
var actionData = [][]string{
	{"bloccare", "sospendere", "disattivare"},
	{"attivare", "abilitare", "accendere"},
	{"richiedere", "inoltrare", "domandare"},
	{"rinnovare", "prorogare", "estendere"},
	{"revocare", "annullare", "cancellare"},
	{"modificare", "variare", "aggiornare"},
	{"consultare", "visualizzare", "controllare"},
	{"stampare", "scaricare", "esportare"},
	{"autorizzare", "approvare", "validare"},
	{"registrare", "censire", "inserire"},
	{"trasferire", "spostare", "migrare"},
	{"chiudere", "estinguere", "cessare"},
	{"sbloccare", "riattivare", "ripristinare"},
	{"verificare", "accertare", "riscontrare"},
	{"configurare", "impostare", "parametrare"},
	{"rimborsare", "restituire", "stornare"},
	{"sottoscrivere", "firmare", "siglare"},
	{"segnalare", "notificare", "comunicare"},
	{"delegare", "incaricare", "demandare"},
	{"archiviare", "conservare", "protocollare"},
	{"addebitare", "contabilizzare", "imputare"},
	{"recuperare", "reimpostare", "rigenerare"},
	{"prenotare", "fissare", "programmare"},
	{"aggiornare il saldo", "ricalcolare", "riallineare"},
}

// curated facet concepts.
var facetData = [][]string{
	{"all'estero", "fuori dall'italia", "in ambito internazionale"},
	{"online", "da remoto", "tramite web"},
	{"in filiale", "allo sportello", "presso l'agenzia"},
	{"urgente", "prioritario", "con precedenza"},
	{"per i clienti privati", "per la clientela retail", "per i consumatori"},
	{"per le aziende", "per la clientela corporate", "per le imprese"},
	{"in valuta", "in divisa estera", "in moneta straniera"},
	{"cointestato", "a doppia firma", "condiviso"},
	{"su dispositivo mobile", "da smartphone", "tramite app"},
	{"senza preavviso", "immediatamente", "in tempo reale"},
	{"con firma cartacea", "in forma cartacea", "su modulo fisico"},
	{"per i minorenni", "per i minori", "per gli under diciotto"},
	{"in caso di smarrimento", "se smarrito", "dopo lo smarrimento"},
	{"in caso di furto", "se rubato", "dopo il furto"},
	{"fuori orario", "oltre l'orario di sportello", "in orario serale"},
	{"durante il fine settimana", "nel weekend", "nei giorni festivi"},
	{"per importi elevati", "oltre soglia", "sopra il massimale"},
	{"in regime agevolato", "con agevolazione", "a condizioni ridotte"},
}

// jargonRoots seed the generated application/product names.
var jargonRoots = []string{
	"Aurora", "Chronos", "Delfi", "Egida", "Fenice", "Gemini", "Helios",
	"Iride", "Kronos", "Lampo", "Meridia", "Nettuno", "Olimpo", "Prisma",
	"Quasar", "Rubino", "Sirio", "Titano", "Ulisse", "Vega", "Zefiro",
	"Atlante", "Boreas", "Cometa", "Dedalo", "Eolo", "Faro", "Grifone",
	"Minerva", "Pegaso",
}

var jargonTypes = []string{
	"applicazione", "piattaforma", "portale", "procedura", "modulo", "sistema",
}

// BuildVocabulary constructs the vocabulary deterministically from seed.
// Jargon concepts (internal application names) are generated from the root
// pools; each has a formal canonical form ("applicazione Aurora") and the
// colloquial bare name ("Aurora").
func BuildVocabulary(seed int64) *Vocabulary {
	rng := rand.New(rand.NewSource(seed))
	v := &Vocabulary{}
	for i, d := range entityData {
		v.Entities = append(v.Entities, Concept{ID: fmt.Sprintf("ent%02d", i), Kind: Entity, Variants: d})
	}
	for i, d := range actionData {
		v.Actions = append(v.Actions, Concept{ID: fmt.Sprintf("act%02d", i), Kind: Action, Variants: d})
	}
	for i, d := range facetData {
		v.Facets = append(v.Facets, Concept{ID: fmt.Sprintf("fac%02d", i), Kind: Facet, Variants: d})
	}
	// Generated jargon: every root × a random type.
	for i, root := range jargonRoots {
		typ := jargonTypes[rng.Intn(len(jargonTypes))]
		v.Jargon = append(v.Jargon, Concept{
			ID:   fmt.Sprintf("jar%02d", i),
			Kind: Jargon,
			Variants: []string{
				typ + " " + root, // canonical editorial form
				root,             // colloquial bare name
			},
		})
	}
	return v
}

// All returns every concept in a stable order.
func (v *Vocabulary) All() []Concept {
	out := make([]Concept, 0, len(v.Entities)+len(v.Actions)+len(v.Facets)+len(v.Jargon))
	out = append(out, v.Entities...)
	out = append(out, v.Actions...)
	out = append(out, v.Facets...)
	out = append(out, v.Jargon...)
	return out
}

// Lexicon builds the term→concept mapping for the synthetic embedder. Each
// surface variant is analyzed with the Italian analyzer and every resulting
// stem is mapped to the concept id, so that an inflected or synonymous
// query term lands on the same concept vector as the document term.
func (v *Vocabulary) Lexicon() embedding.MapLexicon {
	an := textproc.ItalianFull()
	lex := make(embedding.MapLexicon)
	for _, c := range v.All() {
		for _, variant := range c.Variants {
			for _, term := range an.AnalyzeTerms(variant) {
				// First mapping wins: a stem shared between concepts keeps
				// its first concept, which slightly blurs the space exactly
				// like real embeddings do for ambiguous words.
				if _, exists := lex[term]; !exists {
					lex[term] = c.ID
				}
			}
		}
	}
	return lex
}
