package kb

import (
	"strings"
	"testing"

	"uniask/internal/textproc"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	return Generate(GenConfig{Docs: 800, Seed: 42})
}

func TestGenerateDocCount(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Docs) != 800 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Docs: 200, Seed: 7})
	b := Generate(GenConfig{Docs: 200, Seed: 7})
	for i := range a.Docs {
		if a.Docs[i].HTML != b.Docs[i].HTML {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(GenConfig{Docs: 100, Seed: 1})
	b := Generate(GenConfig{Docs: 100, Seed: 2})
	same := 0
	for i := range a.Docs {
		if a.Docs[i].HTML == b.Docs[i].HTML {
			same++
		}
	}
	if same == len(a.Docs) {
		t.Fatal("seeds have no effect")
	}
}

func TestCorpusShapeMatchesPaper(t *testing.T) {
	c := smallCorpus(t)
	s := c.ComputeStats()
	// Paper: avg 248 words, 7.6 paragraphs; accept a generous band.
	if s.AvgWords < 120 || s.AvgWords > 400 {
		t.Errorf("avg words = %.1f, want ~248", s.AvgWords)
	}
	if s.AvgParagraphs < 5 || s.AvgParagraphs > 10 {
		t.Errorf("avg paragraphs = %.1f, want ~7.6", s.AvgParagraphs)
	}
	if s.ClusteredDocs == 0 || s.Clusters == 0 {
		t.Error("no near-duplicate clusters generated")
	}
	frac := float64(s.ClusteredDocs) / float64(s.Docs)
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("clustered fraction = %.2f, want significant replication", frac)
	}
}

func TestDocIDsUniqueAndResolvable(t *testing.T) {
	c := smallCorpus(t)
	seen := map[string]bool{}
	for _, d := range c.Docs {
		if seen[d.ID] {
			t.Fatalf("duplicate id %s", d.ID)
		}
		seen[d.ID] = true
		got, ok := c.DocByID(d.ID)
		if !ok || got.ID != d.ID {
			t.Fatalf("DocByID(%s) failed", d.ID)
		}
	}
	if _, ok := c.DocByID("nope"); ok {
		t.Fatal("DocByID on unknown id returned ok")
	}
}

func TestErrorClustersNearDuplicates(t *testing.T) {
	c := smallCorpus(t)
	var clustered *Doc
	for i := range c.Docs {
		if c.Docs[i].ClusterID != "" {
			clustered = &c.Docs[i]
			break
		}
	}
	if clustered == nil {
		t.Fatal("no clustered doc")
	}
	ids := c.Cluster(clustered.ID)
	if len(ids) < 2 {
		t.Fatalf("cluster size = %d", len(ids))
	}
	a, _ := c.DocByID(ids[0])
	b, _ := c.DocByID(ids[1])
	if a.Code == b.Code {
		t.Fatal("cluster members share a code")
	}
	// Replacing codes should make the texts identical.
	ta := strings.ReplaceAll(strings.Join(a.Paragraphs, "\n"), a.Code, "XXX")
	tb := strings.ReplaceAll(strings.Join(b.Paragraphs, "\n"), b.Code, "XXX")
	if ta != tb {
		t.Fatal("cluster members are not near-duplicates")
	}
	if a.Kind != ErrorDoc {
		t.Fatal("clustered doc is not an ErrorDoc")
	}
}

func TestClusterOfUnclusteredDocIsSelf(t *testing.T) {
	c := smallCorpus(t)
	for _, d := range c.Docs {
		if d.ClusterID == "" {
			ids := c.Cluster(d.ID)
			if len(ids) != 1 || ids[0] != d.ID {
				t.Fatalf("Cluster(%s) = %v", d.ID, ids)
			}
			return
		}
	}
}

func TestHTMLWellFormed(t *testing.T) {
	c := smallCorpus(t)
	for _, d := range c.Docs[:50] {
		if !strings.Contains(d.HTML, "<title>") || !strings.Contains(d.HTML, "<h1>") {
			t.Fatalf("doc %s HTML missing structure", d.ID)
		}
		if !strings.Contains(d.HTML, "<p>") {
			t.Fatalf("doc %s has no paragraphs", d.ID)
		}
		if strings.Count(d.HTML, "<p>") != len(d.Paragraphs) {
			t.Fatalf("doc %s paragraph count mismatch", d.ID)
		}
	}
}

func TestDomainsCoverPaperTopics(t *testing.T) {
	c := smallCorpus(t)
	domains := map[string]int{}
	for _, d := range c.Docs {
		domains[d.Domain]++
	}
	for _, want := range []string{"applicazioni bancarie", "processi generali", "temi tecnici"} {
		if domains[want] == 0 {
			t.Errorf("domain %q absent (have %v)", want, domains)
		}
	}
}

func TestAnswerSentencePresentInBody(t *testing.T) {
	c := smallCorpus(t)
	for _, d := range c.Docs[:100] {
		found := false
		for _, p := range d.Paragraphs {
			if strings.Contains(p, d.AnswerSentence) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("doc %s answer sentence not in body", d.ID)
		}
	}
}

func TestHumanDataset(t *testing.T) {
	c := smallCorpus(t)
	ds := c.HumanDataset(200, 99)
	if len(ds.Queries) != 200 {
		t.Fatalf("queries = %d", len(ds.Queries))
	}
	for _, q := range ds.Queries {
		if q.Kind != HumanQuery {
			t.Fatalf("question %s has kind %d, want HumanQuery", q.ID, q.Kind)
		}
		if q.Text == "" {
			t.Fatal("empty question")
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("question %s has no ground truth", q.ID)
		}
		if q.Answer == "" {
			t.Fatalf("question %s has no ground-truth answer", q.ID)
		}
		for _, id := range q.Relevant {
			if _, ok := c.DocByID(id); !ok {
				t.Fatalf("ground-truth id %s not in corpus", id)
			}
		}
	}
}

func TestHumanQuestionsAreNaturalLanguage(t *testing.T) {
	c := smallCorpus(t)
	ds := c.HumanDataset(100, 5)
	question := 0
	for _, q := range ds.Queries {
		if strings.Contains(q.Text, "?") {
			question++
		}
	}
	if question < 80 {
		t.Fatalf("only %d/100 look like questions", question)
	}
}

func TestHumanQuestionsUseSynonyms(t *testing.T) {
	c := smallCorpus(t)
	ds := c.HumanDataset(300, 5)
	// A meaningful fraction of questions must contain at least one term
	// that does not occur verbatim in any relevant document (the lexical
	// gap the evaluation needs).
	gap := 0
	for _, q := range ds.Queries {
		d, _ := c.DocByID(q.Relevant[0])
		body := strings.ToLower(d.Title + " " + strings.Join(d.Paragraphs, " "))
		for _, w := range strings.Fields(strings.ToLower(strings.Trim(q.Text, "?"))) {
			if len(w) >= 5 && !strings.Contains(body, w) {
				gap++
				break
			}
		}
	}
	if gap < 100 {
		t.Fatalf("lexical gap present in only %d/300 questions", gap)
	}
}

func TestKeywordDataset(t *testing.T) {
	c := smallCorpus(t)
	ds := c.KeywordDataset(150, 3)
	if len(ds.Queries) != 150 {
		t.Fatalf("queries = %d", len(ds.Queries))
	}
	for _, q := range ds.Queries {
		if len(strings.Fields(q.Text)) > 6 {
			t.Fatalf("keyword query too long: %q", q.Text)
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("query %s has no ground truth", q.ID)
		}
		if q.Answer != "" {
			t.Fatalf("keyword query %s must not carry an answer", q.ID)
		}
	}
}

func TestErrorCodeQueriesExactTruth(t *testing.T) {
	c := smallCorpus(t)
	ds := c.ErrorCodeDataset(50, 8)
	for _, q := range ds.Queries {
		if len(q.Relevant) != 1 {
			t.Fatalf("error-code query should have exactly one truth doc: %v", q.Relevant)
		}
		d, _ := c.DocByID(q.Relevant[0])
		if !strings.Contains(q.Text, d.Code) {
			t.Fatalf("query %q does not contain the code %s", q.Text, d.Code)
		}
	}
}

func TestSplit(t *testing.T) {
	c := smallCorpus(t)
	ds := c.HumanDataset(300, 5)
	val, test := ds.Split(1)
	if len(val.Queries) != 200 || len(test.Queries) != 100 {
		t.Fatalf("split = %d/%d", len(val.Queries), len(test.Queries))
	}
	// No overlap.
	seen := map[string]bool{}
	for _, q := range val.Queries {
		seen[q.ID] = true
	}
	for _, q := range test.Queries {
		if seen[q.ID] {
			t.Fatalf("query %s in both splits", q.ID)
		}
	}
	// Deterministic.
	val2, _ := ds.Split(1)
	for i := range val.Queries {
		if val.Queries[i].ID != val2.Queries[i].ID {
			t.Fatal("split not deterministic")
		}
	}
}

func TestOutOfScopeDataset(t *testing.T) {
	c := smallCorpus(t)
	ds := c.OutOfScopeDataset(10, 4)
	if len(ds.Queries) != 10 {
		t.Fatalf("queries = %d", len(ds.Queries))
	}
	for _, q := range ds.Queries {
		if len(q.Relevant) != 0 {
			t.Fatal("out-of-scope query has ground truth")
		}
		if q.Kind != OutOfScopeQuery {
			t.Fatal("wrong kind")
		}
	}
}

func TestCornerCaseDataset(t *testing.T) {
	c := smallCorpus(t)
	ds := c.CornerCaseDataset(100, 4)
	if len(ds.Queries) < 90 || len(ds.Queries) > 110 {
		t.Fatalf("corner cases = %d", len(ds.Queries))
	}
	kinds := map[QueryKind]int{}
	for _, q := range ds.Queries {
		kinds[q.Kind]++
	}
	if kinds[ErrorCodeQuery] == 0 || kinds[OutOfScopeQuery] == 0 {
		t.Fatalf("kind mix = %v", kinds)
	}
}

func TestUATDatasetComposition(t *testing.T) {
	c := smallCorpus(t)
	ds := c.UATDataset(210, 4)
	if len(ds.Queries) < 200 || len(ds.Queries) > 220 {
		t.Fatalf("uat size = %d", len(ds.Queries))
	}
	kinds := map[QueryKind]int{}
	for _, q := range ds.Queries {
		kinds[q.Kind]++
	}
	for _, k := range []QueryKind{HumanQuery, KeywordQuery, OutOfScopeQuery, ErrorCodeQuery, SpecialQuery} {
		if kinds[k] == 0 {
			t.Fatalf("uat missing kind %d: %v", k, kinds)
		}
	}
}

func TestLexiconMapsSynonymsTogether(t *testing.T) {
	v := BuildVocabulary(1)
	lex := v.Lexicon()
	if len(lex) < 100 {
		t.Fatalf("lexicon too small: %d", len(lex))
	}
	// "bloccare" and "sospendere" are variants of the same action concept.
	an := newAnalyzer()
	sa := an.AnalyzeTerms("bloccare")
	sb := an.AnalyzeTerms("sospendere")
	ca, oka := lex.ConceptOf(sa[0])
	cb, okb := lex.ConceptOf(sb[0])
	if !oka || !okb || ca != cb {
		t.Fatalf("synonyms not co-mapped: %v/%v %v/%v", ca, oka, cb, okb)
	}
}

func TestVocabularyShape(t *testing.T) {
	v := BuildVocabulary(1)
	if len(v.Entities) < 30 || len(v.Actions) < 20 || len(v.Facets) < 15 || len(v.Jargon) < 20 {
		t.Fatalf("vocabulary too small: %d/%d/%d/%d",
			len(v.Entities), len(v.Actions), len(v.Facets), len(v.Jargon))
	}
	for _, c := range v.All() {
		if len(c.Variants) == 0 {
			t.Fatalf("concept %s has no variants", c.ID)
		}
	}
}

// newAnalyzer is a test helper around the Italian analyzer.
func newAnalyzer() *textproc.Analyzer { return textproc.ItalianFull() }
