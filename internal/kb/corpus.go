package kb

import (
	"fmt"
	"math/rand"
	"strings"

	"uniask/internal/embedding"
)

// DocKind classifies generated documents.
type DocKind int

const (
	// ProcedureDoc explains how to perform an operation.
	ProcedureDoc DocKind = iota
	// ErrorDoc documents a specific error code; error docs come in
	// near-duplicate clusters differing only in the code.
	ErrorDoc
	// ProductDoc describes a banking product.
	ProductDoc
	// TechnicalDoc covers an internal application or platform.
	TechnicalDoc
)

// Doc is one generated knowledge-base document.
type Doc struct {
	// ID is the KB document identifier ("kb00042").
	ID string
	// Kind is the document type.
	Kind DocKind
	// Title is the page title.
	Title string
	// Paragraphs is the body text, one entry per HTML paragraph.
	Paragraphs []string
	// HTML is the rendered page as stored in the knowledge base.
	HTML string
	// Domain, Section and Topic are the editor-provided tags.
	Domain, Section, Topic string
	// AnswerSentence is the sentence that answers the document's core
	// question (used as ground-truth answer material).
	AnswerSentence string
	// ClusterID groups near-duplicate documents ("" when unique).
	ClusterID string
	// Code is the error/procedure code for ErrorDocs ("" otherwise).
	Code string

	// The concepts the document is about, used by the query generators.
	entity Concept
	action Concept
	facet  Concept
}

// Corpus is a generated knowledge base.
type Corpus struct {
	// Docs holds every document, index-ordered by ID.
	Docs []Doc
	// Vocab is the concept vocabulary the corpus was generated from.
	Vocab *Vocabulary

	byID     map[string]int
	clusters map[string][]string // cluster id -> doc ids
	seed     int64
}

// GenConfig controls corpus generation.
type GenConfig struct {
	// Docs is the number of documents (paper scale: 59308). Default 6000.
	Docs int
	// Seed drives all generation randomness.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Docs <= 0 {
		c.Docs = 6000
	}
	return c
}

// Italian sentence material. Procedure phrases complete "è necessario ...".
var procedurePhrases = []string{
	"contattare il supporto tecnico interno",
	"aprire una segnalazione tramite il portale dedicato",
	"accedere alla sezione documenti del menu principale",
	"compilare il modulo previsto dalla normativa vigente",
	"attendere la conferma tramite posta certificata",
	"chiamare il numero verde riservato ai dipendenti",
	"inserire il codice dispositivo ricevuto via sms",
	"verificare i dati anagrafici del cliente nel censimento",
	"allegare copia del documento di identità in corso di validità",
	"richiedere l'approvazione del responsabile di filiale",
	"selezionare la voce corrispondente nel pannello operativo",
	"stampare la ricevuta e farla firmare al cliente",
	"controllare lo stato della pratica nel fascicolo elettronico",
	"inviare la richiesta alla casella funzionale di back office",
	"eseguire nuovamente l'accesso con le credenziali aggiornate",
	"annotare il numero di protocollo assegnato alla pratica",
	"consultare la guida operativa pubblicata nella intranet",
	"attendere il ciclo notturno di aggiornamento dei sistemi",
	"abilitare i permessi richiesti dal profilo utente",
	"confermare l'operazione entro il termine indicato",
}

var statementTemplates = []string{
	"La procedura consente di %A %E %F.",
	"Il servizio permette alla clientela di %A %E.",
	"Gli operatori di filiale possono %A %E %F dopo il riconoscimento del cliente.",
	"Per motivi di sicurezza è previsto che il personale possa %A %E soltanto %F.",
	"La funzione per %A %E è disponibile %F.",
	"Il regolamento interno disciplina le modalità per %A %E.",
	"Prima di %A %E è opportuno verificare la documentazione del cliente.",
	"La richiesta di %A %E viene lavorata dal back office entro due giorni lavorativi.",
	"Il sistema registra ogni operazione eseguita per %A %E.",
	"L'operazione di %A %E richiede la firma del cliente.",
	"In presenza di anomalie sul profilo non è possibile %A %E.",
	"Il personale autorizzato può %A %E direttamente dal pannello operativo.",
	"La normativa vigente impone controlli aggiuntivi prima di %A %E %F.",
	"Il cliente riceve una notifica quando la banca conclude l'operazione di %A %E.",
}

var answerTemplates = []string{
	"Per %A %E %F è necessario %P.",
	"Per %A %E occorre %P e successivamente %P2.",
	"La modalità corretta per %A %E %F prevede di %P.",
	"Quando il cliente chiede di %A %E, l'operatore deve %P.",
}

var errorStatementTemplates = []string{
	"Il messaggio di errore %C compare durante il tentativo di %A %E.",
	"L'anomalia %C si verifica quando i dati inseriti non superano i controlli.",
	"L'errore %C è censito nel catalogo delle anomalie della piattaforma.",
	"Dopo la comparsa del codice %C l'operazione viene sospesa automaticamente.",
	"Il codice %C indica un problema nella fase di validazione della richiesta.",
}

var errorAnswerTemplates = []string{
	"In caso di errore %C è necessario %P.",
	"Per risolvere l'errore %C occorre %P e poi ripetere l'operazione.",
	"Alla comparsa del codice %C l'operatore deve %P.",
}

var closingSentences = []string{
	"Per ulteriori dettagli consultare la documentazione ufficiale nella intranet aziendale.",
	"In caso di dubbi contattare il referente di processo della propria struttura.",
	"La presente pagina è aggiornata alla più recente circolare interna.",
	"Eventuali eccezioni devono essere autorizzate dal responsabile competente.",
	"Il mancato rispetto della procedura può comportare rilievi di audit.",
}

var introSentences = []string{
	"Questa pagina descrive la procedura operativa di riferimento.",
	"Di seguito sono riportate le istruzioni destinate al personale di rete.",
	"La presente scheda riepiloga le regole operative in vigore.",
	"Il documento fornisce le indicazioni necessarie agli operatori.",
	"La scheda illustra i passaggi previsti dal processo interno.",
}

// domainFor maps a document kind to the paper's topic areas.
func domainFor(kind DocKind, jargon bool) (domain, section string) {
	switch kind {
	case TechnicalDoc:
		return "temi tecnici", "applicazioni"
	case ErrorDoc:
		if jargon {
			return "temi tecnici", "anomalie"
		}
		return "processi generali", "anomalie"
	case ProductDoc:
		return "applicazioni bancarie", "prodotti"
	default:
		return "processi generali", "procedure"
	}
}

// Generate builds a deterministic synthetic corpus.
func Generate(cfg GenConfig) *Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := BuildVocabulary(cfg.Seed + 1)

	c := &Corpus{
		Vocab:    vocab,
		byID:     make(map[string]int),
		clusters: make(map[string][]string),
		seed:     cfg.Seed,
	}

	codeSeq := 1000
	clusterSeq := 0
	for len(c.Docs) < cfg.Docs {
		roll := rng.Float64()
		switch {
		case roll < 0.07:
			// Error cluster: 2-8 near-duplicate docs. A cluster roll emits
			// several documents at once, so the roll probability is set so
			// that roughly a quarter of all documents end up in clusters —
			// the "significant amount of content replication" of §4.
			size := 2 + rng.Intn(7)
			if len(c.Docs)+size > cfg.Docs {
				size = cfg.Docs - len(c.Docs)
			}
			clusterSeq++
			clusterID := fmt.Sprintf("cl%04d", clusterSeq)
			c.generateErrorCluster(rng, clusterID, size, &codeSeq)
		case roll < 0.52:
			c.appendDoc(c.generateProcedureDoc(rng))
		case roll < 0.77:
			c.appendDoc(c.generateProductDoc(rng))
		default:
			c.appendDoc(c.generateTechnicalDoc(rng))
		}
	}
	return c
}

func (c *Corpus) appendDoc(d Doc) {
	d.ID = fmt.Sprintf("kb%05d", len(c.Docs))
	d.HTML = renderHTML(d)
	c.byID[d.ID] = len(c.Docs)
	if d.ClusterID != "" {
		c.clusters[d.ClusterID] = append(c.clusters[d.ClusterID], d.ID)
	}
	c.Docs = append(c.Docs, d)
}

// DocByID looks a document up.
func (c *Corpus) DocByID(id string) (Doc, bool) {
	i, ok := c.byID[id]
	if !ok {
		return Doc{}, false
	}
	return c.Docs[i], true
}

// Cluster returns the ids of all documents in the same near-duplicate
// cluster as id (including id itself).
func (c *Corpus) Cluster(id string) []string {
	d, ok := c.DocByID(id)
	if !ok || d.ClusterID == "" {
		return []string{id}
	}
	return c.clusters[d.ClusterID]
}

// SameTopic reports whether two documents cover the same operation: same
// entity and same action concepts.
func (c *Corpus) SameTopic(a, b string) bool {
	da, oka := c.DocByID(a)
	db, okb := c.DocByID(b)
	if !oka || !okb {
		return false
	}
	return da.entity.ID == db.entity.ID && da.action.ID == db.action.ID
}

// Lexicon returns the embedding lexicon for the corpus vocabulary.
func (c *Corpus) Lexicon() embedding.MapLexicon { return c.Vocab.Lexicon() }

// Seed returns the generation seed (query generators derive theirs from it).
func (c *Corpus) Seed() int64 { return c.seed }

// fill renders a template, substituting %A/%E/%F/%P/%P2/%C slots.
func fill(tpl string, a, e, f, p, p2, code string) string {
	r := strings.NewReplacer("%A", a, "%E", e, "%F", f, "%P2", p2, "%P", p, "%C", code)
	s := r.Replace(tpl)
	// Collapse doubled spaces left by empty facets.
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	s = strings.ReplaceAll(s, " .", ".")
	return s
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func pickConcept(rng *rand.Rand, pool []Concept) Concept { return pool[rng.Intn(len(pool))] }

// buildBody assembles paragraphs: intro, statements, the answer sentence in
// a middle paragraph, extra statements, closing. Paragraph and sentence
// counts are tuned so documents average ≈250 words over ≈7 paragraphs.
func buildBody(rng *rand.Rand, statements []string, answer string) []string {
	nParas := 6 + rng.Intn(4) // 6..9
	paras := make([]string, 0, nParas)
	paras = append(paras, pick(rng, introSentences))
	answerAt := 1 + rng.Intn(nParas-2)
	for i := 1; i < nParas-1; i++ {
		var sentences []string
		if i == answerAt {
			sentences = append(sentences, answer)
		}
		nSent := 2 + rng.Intn(3)
		for s := 0; s < nSent; s++ {
			sentences = append(sentences, statements[rng.Intn(len(statements))])
		}
		paras = append(paras, strings.Join(sentences, " "))
	}
	paras = append(paras, pick(rng, closingSentences))
	return paras
}

func (c *Corpus) generateProcedureDoc(rng *rand.Rand) Doc {
	e := pickConcept(rng, c.Vocab.Entities)
	a := pickConcept(rng, c.Vocab.Actions)
	f := pickConcept(rng, c.Vocab.Facets)
	p := pick(rng, procedurePhrases)
	p2 := pick(rng, procedurePhrases)

	answer := fill(pick(rng, answerTemplates), a.Canonical(), e.Canonical(), f.Canonical(), p, p2, "")
	var statements []string
	for _, tpl := range statementTemplates {
		statements = append(statements, fill(tpl, a.Canonical(), e.Canonical(), f.Canonical(), "", "", ""))
	}
	// Editors title about half the pages with the bare operation, leaving
	// the facet to the body — titles are a lossy summary of the content,
	// which is what makes aggressive title boosting counterproductive.
	title := strings.Title(a.Canonical()) + " " + e.Canonical()
	if rng.Float64() < 0.5 {
		title += " " + f.Canonical()
	}
	domain, section := domainFor(ProcedureDoc, false)
	return Doc{
		Kind: ProcedureDoc, Title: title,
		Paragraphs:     buildBody(rng, statements, answer),
		Domain:         domain,
		Section:        section,
		Topic:          e.ID,
		AnswerSentence: answer,
		entity:         e, action: a, facet: f,
	}
}

func (c *Corpus) generateProductDoc(rng *rand.Rand) Doc {
	e := pickConcept(rng, c.Vocab.Entities)
	a := pickConcept(rng, c.Vocab.Actions)
	f := pickConcept(rng, c.Vocab.Facets)
	p := pick(rng, procedurePhrases)

	answer := fill("Il prodotto %E consente di %A %F; per l'attivazione è necessario %P.",
		a.Canonical(), e.Canonical(), f.Canonical(), p, "", "")
	var statements []string
	for _, tpl := range statementTemplates {
		statements = append(statements, fill(tpl, a.Canonical(), e.Canonical(), f.Canonical(), "", "", ""))
	}
	statements = append(statements,
		fill("Le condizioni economiche di %E sono riportate nel foglio informativo.", "", e.Canonical(), "", "", "", ""),
		fill("Il collocamento di %E è riservato al personale abilitato.", "", e.Canonical(), "", "", "", ""),
	)
	title := "Scheda prodotto: " + e.Canonical()
	domain, section := domainFor(ProductDoc, false)
	return Doc{
		Kind: ProductDoc, Title: title,
		Paragraphs:     buildBody(rng, statements, answer),
		Domain:         domain,
		Section:        section,
		Topic:          e.ID,
		AnswerSentence: answer,
		entity:         e, action: a, facet: f,
	}
}

func (c *Corpus) generateTechnicalDoc(rng *rand.Rand) Doc {
	j := pickConcept(rng, c.Vocab.Jargon)
	a := pickConcept(rng, c.Vocab.Actions)
	f := pickConcept(rng, c.Vocab.Facets)
	p := pick(rng, procedurePhrases)
	p2 := pick(rng, procedurePhrases)

	answer := fill("Per %A tramite %E %F è necessario %P.", a.Canonical(), j.Canonical(), f.Canonical(), p, p2, "")
	statements := []string{
		fill("%E supporta le funzioni operative della rete commerciale.", "", strings.Title(j.Canonical()), "", "", "", ""),
		fill("L'accesso a %E avviene con le credenziali aziendali.", "", j.Canonical(), "", "", "", ""),
		fill("Gli aggiornamenti di %E vengono rilasciati nel fine settimana.", "", j.Canonical(), "", "", "", ""),
		fill("Il manuale utente di %E è pubblicato nella sezione documenti.", "", j.Canonical(), "", "", "", ""),
		fill("Per %A %F gli operatori utilizzano %E.", a.Canonical(), j.Canonical(), f.Canonical(), "", "", ""),
		fill("Le anomalie di %E vanno segnalate al presidio applicativo.", "", j.Canonical(), "", "", "", ""),
	}
	title := strings.Title(j.Canonical()) + ": guida operativa"
	domain, section := domainFor(TechnicalDoc, true)
	return Doc{
		Kind: TechnicalDoc, Title: title,
		Paragraphs:     buildBody(rng, statements, answer),
		Domain:         domain,
		Section:        section,
		Topic:          j.ID,
		AnswerSentence: answer,
		entity:         j, action: a, facet: f,
	}
}

// generateErrorCluster emits size near-duplicate error documents that share
// every sentence except the specific error code.
func (c *Corpus) generateErrorCluster(rng *rand.Rand, clusterID string, size int, codeSeq *int) {
	e := pickConcept(rng, c.Vocab.Entities)
	a := pickConcept(rng, c.Vocab.Actions)
	f := pickConcept(rng, c.Vocab.Facets)
	p := pick(rng, procedurePhrases)

	// Shared textual skeleton: statement templates and answer template are
	// chosen once per cluster so members differ only in the code.
	stmtTpls := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		stmtTpls = append(stmtTpls, pick(rng, errorStatementTemplates))
	}
	ansTpl := pick(rng, errorAnswerTemplates)
	bodySeed := rng.Int63()

	for k := 0; k < size; k++ {
		code := fmt.Sprintf("ERR-%04d", *codeSeq)
		*codeSeq++
		answer := fill(ansTpl, a.Canonical(), e.Canonical(), f.Canonical(), p, "", code)
		var statements []string
		for _, tpl := range stmtTpls {
			statements = append(statements, fill(tpl, a.Canonical(), e.Canonical(), f.Canonical(), "", "", code))
		}
		// Same body randomness for every cluster member -> near duplicates.
		bodyRng := rand.New(rand.NewSource(bodySeed))
		domain, section := domainFor(ErrorDoc, false)
		d := Doc{
			Kind:           ErrorDoc,
			Title:          "Errore " + code + " - " + a.Canonical() + " " + e.Canonical(),
			Paragraphs:     buildBody(bodyRng, statements, answer),
			Domain:         domain,
			Section:        section,
			Topic:          e.ID,
			AnswerSentence: answer,
			ClusterID:      clusterID,
			Code:           code,
			entity:         e, action: a, facet: f,
		}
		c.appendDoc(d)
	}
}

// renderHTML renders a Doc as the HTML page stored in the knowledge base.
func renderHTML(d Doc) string {
	var b strings.Builder
	b.WriteString("<html><head><title>")
	b.WriteString(escape(d.Title))
	b.WriteString("</title>\n")
	fmt.Fprintf(&b, "<meta name=\"domain\" content=\"%s\">\n", escape(d.Domain))
	fmt.Fprintf(&b, "<meta name=\"section\" content=\"%s\">\n", escape(d.Section))
	fmt.Fprintf(&b, "<meta name=\"topic\" content=\"%s\">\n", escape(d.Topic))
	b.WriteString("</head><body>\n<h1>")
	b.WriteString(escape(d.Title))
	b.WriteString("</h1>\n")
	for _, p := range d.Paragraphs {
		b.WriteString("<p>")
		b.WriteString(escape(p))
		b.WriteString("</p>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// Stats summarizes corpus shape for diagnostics and EXPERIMENTS.md.
type Stats struct {
	Docs          int
	AvgWords      float64
	AvgParagraphs float64
	Clusters      int
	ClusteredDocs int
}

// ComputeStats scans the corpus.
func (c *Corpus) ComputeStats() Stats {
	s := Stats{Docs: len(c.Docs), Clusters: len(c.clusters)}
	totalWords, totalParas := 0, 0
	for _, d := range c.Docs {
		totalParas += len(d.Paragraphs)
		for _, p := range d.Paragraphs {
			totalWords += len(strings.Fields(p))
		}
		if d.ClusterID != "" {
			s.ClusteredDocs++
		}
	}
	if len(c.Docs) > 0 {
		s.AvgWords = float64(totalWords) / float64(len(c.Docs))
		s.AvgParagraphs = float64(totalParas) / float64(len(c.Docs))
	}
	return s
}
