// Command uniask-shard runs one UniAsk shard server: a process hosting
// index shards behind the remote wire protocol, queried by a uniask
// frontend started with -shard-endpoints. One server can host several
// logical shards (the frontend's consistent-hash placement decides which);
// replication comes from placing each shard on more than one server.
//
// Usage:
//
//	uniask-shard [-addr :9701] [-snapshot shard.bin] [-shard 0]
//	             [-memtable-max-docs 0] [-compaction-fanin 0]
//
// The -snapshot flag restores a segmented snapshot (written by the
// frontend's per-shard Save, or copied from a retiring server — see
// docs/OPERATIONS.md for the replacement runbook) as logical shard
// -shard before serving.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/remote"
)

// options collects the parsed flags so run is testable.
type options struct {
	addr     string
	snapshot string
	shard    int
	memtable int
	fanIn    int
	maxFrame int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":9701", "listen address")
	flag.StringVar(&opts.snapshot, "snapshot", "", "segmented snapshot restored as shard -shard before serving")
	flag.IntVar(&opts.shard, "shard", 0, "logical shard id the -snapshot restores into")
	flag.IntVar(&opts.memtable, "memtable-max-docs", 0, "chunks per memtable before auto-seal (0 = 1024, negative disables auto-seal)")
	flag.IntVar(&opts.fanIn, "compaction-fanin", 0, "sealed segments merged per compaction (0 = 4, negative disables compaction)")
	flag.IntVar(&opts.maxFrame, "max-frame", 0, "request frame cap in bytes (0 = 64 MiB)")
	flag.Parse()

	srv, err := run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniask-shard:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "uniask-shard: serving on %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "uniask-shard: shutting down")
	srv.Close()
}

// run builds the server from the options, restores the optional snapshot
// and starts listening. The production schema is fixed: the wire protocol
// carries documents and queries, not configuration, so every shard server
// must analyze exactly like the frontend.
func run(opts options) (*remote.Server, error) {
	cfg := remote.ServerConfig{
		Index: index.Config{Schema: indexer.Schema()},
		Segment: index.SegmentConfig{
			MemtableMaxDocs: opts.memtable,
			CompactionFanIn: opts.fanIn,
		},
		MaxFrame: opts.maxFrame,
	}
	srv := remote.NewServer(cfg)
	if opts.snapshot != "" {
		f, err := os.Open(opts.snapshot)
		if err != nil {
			return nil, fmt.Errorf("open snapshot: %w", err)
		}
		st, err := index.ReadSegmented(f, cfg.Index, cfg.Segment)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("restore snapshot %s: %w", opts.snapshot, err)
		}
		srv.AdoptStore(opts.shard, st)
		fmt.Fprintf(os.Stderr, "uniask-shard: restored %d live chunks into shard %d from %s\n",
			st.LiveLen(), opts.shard, opts.snapshot)
	}
	if err := srv.Start(opts.addr); err != nil {
		return nil, err
	}
	return srv, nil
}
