package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/remote"
	"uniask/internal/vector"
)

// TestRunSmoke is the binary's smoke test: boot with -addr on an ephemeral
// loopback port and a -snapshot to restore, then drive a real client
// through ping, gauge and search RPCs against the restored shard.
func TestRunSmoke(t *testing.T) {
	cfg := index.Config{Schema: indexer.Schema()}
	store := index.NewSegmented(cfg, index.SegmentConfig{})
	for i := 0; i < 10; i++ {
		title := fmt.Sprintf("Istruzioni carta %d", i)
		err := store.Add(index.Document{
			ID:       fmt.Sprintf("kb%05d#0", i),
			ParentID: fmt.Sprintf("kb%05d", i),
			Fields:   map[string]string{"title": title, "content": "Procedura per il blocco della carta di credito."},
			Vectors:  map[string]vector.Vector{},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	store.Publish()
	store.WaitCompaction()

	snap := filepath.Join(t.TempDir(), "shard.bin")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := run(options{addr: "127.0.0.1:0", snapshot: snap, shard: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := remote.NewClient(remote.ClientConfig{Addr: srv.Addr(), Shard: 3})
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := c.LiveLen(), store.LiveLen(); got != want {
		t.Fatalf("restored shard holds %d live chunks, want %d", got, want)
	}
	hits, err := c.SearchText(context.Background(), "blocco carta", 5, index.TextOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits from the restored shard")
	}
}

// TestRunBadSnapshot: a corrupt snapshot must fail startup with a
// descriptive error, not serve an empty shard.
func TestRunBadSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(options{addr: "127.0.0.1:0", snapshot: bad}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
