// Command doccheck validates intra-repo links in markdown files: every
// relative link target (file, directory, or file#anchor) must exist on
// disk. It catches the classic docs rot — a file is moved or renamed and
// the README keeps pointing at the old path. External links (http, https,
// mailto) are skipped; anchors are checked for target-file existence only,
// not heading presence.
//
// Usage:
//
//	doccheck README.md DESIGN.md docs/*.md
//
// Exit status is nonzero if any link is dead, listing every offender.
// `make doccheck` runs it over README.md, DESIGN.md, OPERATIONS.md and
// docs/*.md.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// definitions ("[x]: target") are rare in this repo and not matched.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <file.md> [more.md ...]")
		os.Exit(2)
	}
	dead := 0
	checked := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		base := filepath.Dir(path)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLink(target) {
					continue
				}
				checked++
				if !targetExists(base, target) {
					fmt.Fprintf(os.Stderr, "doccheck: %s:%d: dead link %q\n", path, i+1, target)
					dead++
				}
			}
		}
	}
	if dead > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d dead intra-repo link(s)\n", dead)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d intra-repo links resolve\n", checked)
}

// skipLink reports whether the target is outside this checker's scope:
// absolute URLs, mail links, and pure in-page anchors.
func skipLink(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// targetExists resolves the target relative to the linking file's directory
// and checks the file or directory exists. A "file.md#section" target
// checks file.md.
func targetExists(base, target string) bool {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	_, err := os.Stat(filepath.Join(base, target))
	return err == nil
}
