// Command uniask runs the UniAsk REST service over a synthetic knowledge
// base: login, ask, search, feedback and dashboard endpoints.
//
// Usage:
//
//	uniask [-addr :8080] [-docs 6000] [-seed 1] [-shards 4]
//	       [-trace-capacity 2048] [-trace-sample 1.0] [-trace-slow 250ms]
//
// Example session:
//
//	TOKEN=$(curl -s -XPOST localhost:8080/api/login -d '{"user":"mario"}' | jq -r .token)
//	curl -s -XPOST localhost:8080/api/ask -H "Authorization: Bearer $TOKEN" \
//	     -d '{"question":"Come posso bloccare la carta di credito?"}' | jq .
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"uniask"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		docs      = flag.Int("docs", 6000, "synthetic corpus size (paper: 59308)")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		workers   = flag.Int("workers", 0, "retrieval fan-out width (0 = one per CPU, 1 = sequential)")
		shards    = flag.Int("shards", 1, "index shard count (1 = monolithic index)")
		endpoints = flag.String("shard-endpoints", "", "comma-separated uniask-shard server addresses; when set, shards live on those servers (remote scatter-gather)")
		replicas  = flag.Int("shard-replication", 2, "endpoints hosting each remote shard (with -shard-endpoints)")
		memtable  = flag.Int("memtable-max-docs", 0, "chunks per memtable before auto-seal (0 = 1024, negative disables auto-seal)")
		fanIn     = flag.Int("compaction-fanin", 0, "sealed segments merged per compaction (0 = 4, negative disables compaction)")
		traceCap  = flag.Int("trace-capacity", 0, "trace store size (0 = 2048 retained traces, negative disables tracing)")
		traceRate = flag.Float64("trace-sample", 0, "head-sampling rate in (0,1] (0 = trace every request)")
		traceSlow = flag.Duration("trace-slow", 0, "always-retain latency threshold (0 = 250ms)")
		noQuant   = flag.Bool("no-vector-quantization", false, "ANN search over full float32 vectors instead of the int8 quantized arena (recall debugging)")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating and indexing %d documents...\n", *docs)
	start := time.Now()
	var remoteShards []string
	if *endpoints != "" {
		for _, ep := range strings.Split(*endpoints, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				remoteShards = append(remoteShards, ep)
			}
		}
	}
	corpus := uniask.SyntheticCorpus(*docs, *seed)
	sys, err := uniask.NewFromCorpus(context.Background(), corpus, uniask.Config{
		EnrichSummary:             true,
		SearchWorkers:             *workers,
		ShardCount:                *shards,
		RemoteShards:              remoteShards,
		RemoteReplication:         *replicas,
		MemtableMaxDocs:           *memtable,
		CompactionFanIn:           *fanIn,
		TraceCapacity:             *traceCap,
		TraceSampleRate:           *traceRate,
		TraceSlowThreshold:        *traceSlow,
		DisableVectorQuantization: *noQuant,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ready in %v: %d chunks indexed, serving on %s\n",
		time.Since(start).Round(time.Millisecond), sys.IndexedChunks(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := sys.NewServer().Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
}
