// Command uniask runs the UniAsk REST service over a synthetic knowledge
// base: login, ask, search, feedback and dashboard endpoints.
//
// Usage:
//
//	uniask [-addr :8080] [-docs 6000] [-seed 1] [-shards 4]
//	       [-trace-capacity 2048] [-trace-sample 1.0] [-trace-slow 250ms]
//	       [-tenants overrides.json] [-tenants-reload 5s]
//	       [-admission-capacity 64] [-admission-queue 64] [-admission-wait 500ms]
//
// Example session:
//
//	TOKEN=$(curl -s -XPOST localhost:8080/api/login -d '{"user":"mario"}' | jq -r .token)
//	curl -s -XPOST localhost:8080/api/ask -H "Authorization: Bearer $TOKEN" \
//	     -d '{"question":"Come posso bloccare la carta di credito?"}' | jq .
//
// With -tenants the server runs in multi-tenant mode (docs/MULTITENANCY.md):
// tenants listed in the overrides file each get their own knowledge base and
// limits, requests name their tenant via the X-Uniask-Tenant header or
// /t/{tenant}/api/... paths, and the admission front door sheds excess
// traffic with 429 + Retry-After.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"uniask"
	"uniask/internal/server"
	"uniask/internal/session"
	"uniask/internal/tenant"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		docs      = flag.Int("docs", 6000, "synthetic corpus size (paper: 59308)")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		workers   = flag.Int("workers", 0, "retrieval fan-out width (0 = one per CPU, 1 = sequential)")
		shards    = flag.Int("shards", 1, "index shard count (1 = monolithic index)")
		endpoints = flag.String("shard-endpoints", "", "comma-separated uniask-shard server addresses; when set, shards live on those servers (remote scatter-gather)")
		replicas  = flag.Int("shard-replication", 2, "endpoints hosting each remote shard (with -shard-endpoints)")
		memtable  = flag.Int("memtable-max-docs", 0, "chunks per memtable before auto-seal (0 = 1024, negative disables auto-seal)")
		fanIn     = flag.Int("compaction-fanin", 0, "sealed segments merged per compaction (0 = 4, negative disables compaction)")
		traceCap  = flag.Int("trace-capacity", 0, "trace store size (0 = 2048 retained traces, negative disables tracing)")
		traceRate = flag.Float64("trace-sample", 0, "head-sampling rate in (0,1] (0 = trace every request)")
		traceSlow = flag.Duration("trace-slow", 0, "always-retain latency threshold (0 = 250ms)")
		noQuant   = flag.Bool("no-vector-quantization", false, "ANN search over full float32 vectors instead of the int8 quantized arena (recall debugging)")

		tenantsFile   = flag.String("tenants", "", "tenant overrides JSON file; when set the server runs multi-tenant (see docs/MULTITENANCY.md)")
		tenantsReload = flag.Duration("tenants-reload", 0, "overrides hot-reload poll interval (0 = 5s, negative disables)")
		admCapacity   = flag.Int("admission-capacity", 0, "global concurrent query slots across tenants (0 = 64, negative = unlimited)")
		admQueue      = flag.Int("admission-queue", 0, "per-class admission queue depth (0 = 64)")
		admWait       = flag.Duration("admission-wait", 0, "max time a request queues for a slot before shedding (0 = 500ms)")
		cacheBudget   = flag.Int("tenant-cache-budget", 0, "total query-cache entries across tenant partitions (0 = 4096)")

		sessionTTL    = flag.Duration("session-ttl", 0, "idle conversational-session lifetime (0 = 30m, negative disables expiry)")
		sessionBudget = flag.Int("session-budget", 0, "global live-session budget, LRU-evicted past it (0 = 1024)")
		sseHeartbeat  = flag.Duration("sse-heartbeat", 0, "keep-alive comment interval on idle session streams (0 = 15s, negative disables)")
	)
	flag.Parse()

	if *tenantsFile != "" {
		runMultiTenant(*addr, *tenantsFile, multiTenantOptions{
			docs: *docs, seed: *seed,
			reload:       *tenantsReload,
			cacheBudget:  *cacheBudget,
			sessionTTL:   *sessionTTL,
			sessionMax:   *sessionBudget,
			sseHeartbeat: *sseHeartbeat,
			admission: tenant.AdmissionConfig{
				Capacity: *admCapacity, QueueDepth: *admQueue, MaxWait: *admWait,
			},
			base: uniask.Config{
				EnrichSummary:             true,
				SearchWorkers:             *workers,
				ShardCount:                *shards,
				MemtableMaxDocs:           *memtable,
				CompactionFanIn:           *fanIn,
				TraceCapacity:             *traceCap,
				TraceSampleRate:           *traceRate,
				TraceSlowThreshold:        *traceSlow,
				DisableVectorQuantization: *noQuant,
			},
		})
		return
	}

	fmt.Fprintf(os.Stderr, "generating and indexing %d documents...\n", *docs)
	start := time.Now()
	var remoteShards []string
	if *endpoints != "" {
		for _, ep := range strings.Split(*endpoints, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				remoteShards = append(remoteShards, ep)
			}
		}
	}
	corpus := uniask.SyntheticCorpus(*docs, *seed)
	sys, err := uniask.NewFromCorpus(context.Background(), corpus, uniask.Config{
		EnrichSummary:             true,
		SearchWorkers:             *workers,
		ShardCount:                *shards,
		RemoteShards:              remoteShards,
		RemoteReplication:         *replicas,
		MemtableMaxDocs:           *memtable,
		CompactionFanIn:           *fanIn,
		TraceCapacity:             *traceCap,
		TraceSampleRate:           *traceRate,
		TraceSlowThreshold:        *traceSlow,
		DisableVectorQuantization: *noQuant,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ready in %v: %d chunks indexed, serving on %s\n",
		time.Since(start).Round(time.Millisecond), sys.IndexedChunks(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := sys.NewServer()
	configureSessions(srv, *sessionTTL, *sessionBudget, *sseHeartbeat)
	if err := srv.Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
}

// configureSessions applies the conversational-session flags to a built
// server (the session gauges read srv.Sessions at poll time, so swapping
// the store after construction is safe).
func configureSessions(srv *server.Server, ttl time.Duration, budget int, heartbeat time.Duration) {
	if ttl != 0 || budget != 0 {
		srv.Sessions = session.NewStore(session.Config{TTL: ttl, MaxSessions: budget})
	}
	srv.SSEHeartbeat = heartbeat
}

// multiTenantOptions carries the multi-tenant flag set.
type multiTenantOptions struct {
	docs         int
	seed         int64
	reload       time.Duration
	cacheBudget  int
	sessionTTL   time.Duration
	sessionMax   int
	sseHeartbeat time.Duration
	admission    tenant.AdmissionConfig
	base         uniask.Config
}

// runMultiTenant serves in multi-tenant mode: each tenant in the overrides
// file gets its own synthetic knowledge base (seeded from the tenant ID, so
// corpora are deterministic but distinct), built lazily on the tenant's
// first request.
func runMultiTenant(addr, overridesPath string, opt multiTenantOptions) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv, err := uniask.NewMultiTenantServer(ctx, uniask.MultiTenantConfig{
		Base:           opt.base,
		OverridesPath:  overridesPath,
		ReloadInterval: opt.reload,
		CacheBudget:    opt.cacheBudget,
		Admission:      opt.admission,
		Corpus: func(id string) *uniask.Corpus {
			fmt.Fprintf(os.Stderr, "onboarding tenant %q: generating and indexing %d documents...\n", id, opt.docs)
			return uniask.SyntheticCorpus(opt.docs, opt.seed^int64(tenantSeed(id)))
		},
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	configureSessions(srv, opt.sessionTTL, opt.sessionMax, opt.sseHeartbeat)
	ids := srv.Tenants.Overrides().TenantIDs()
	fmt.Fprintf(os.Stderr, "multi-tenant mode: %d tenants onboarded (%s), serving on %s\n",
		len(ids), strings.Join(ids, ", "), addr)
	if err := srv.Serve(ctx, addr); err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
}

// tenantSeed derives a stable corpus seed from a tenant ID (FNV-1a).
func tenantSeed(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}
