// Command uniask-bench regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	uniask-bench [-docs N] [-human N] [-keyword N] [-seed S] [-table 1|2|3|4|5] [-pilot] [-figure 2|3]
//
// Without selection flags it runs everything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"uniask/internal/experiments"
)

func main() {
	var (
		docs    = flag.Int("docs", experiments.DefaultScale.Docs, "corpus size (paper: 59308)")
		human   = flag.Int("human", experiments.DefaultScale.Human, "human dataset size (paper: 2700)")
		keyword = flag.Int("keyword", experiments.DefaultScale.Keyword, "keyword dataset size (paper: 800)")
		seed    = flag.Int64("seed", 1, "generation seed")
		table   = flag.Int("table", 0, "run a single table (1-5)")
		figure  = flag.Int("figure", 0, "run a single figure (2-3)")
		pilot   = flag.Bool("pilot", false, "run the §8 pilot-phase simulations")
		post    = flag.Bool("postlaunch", false, "run the post-launch ticket-reduction analysis")
		future  = flag.Bool("futurework", false, "run the §11 future-work experiments (adapter, knowledge graph)")
	)
	flag.Parse()

	scale := experiments.Scale{Docs: *docs, Human: *human, Keyword: *keyword, Seed: *seed}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "setup: generating %d docs, indexing...\n", scale.Docs)
	env, err := experiments.Setup(context.Background(), scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	stats := env.Corpus.ComputeStats()
	fmt.Fprintf(os.Stderr, "setup done in %v: %d docs, %.0f avg words, %.1f avg paragraphs, %d chunks indexed\n",
		time.Since(start).Round(time.Millisecond), stats.Docs, stats.AvgWords, stats.AvgParagraphs, env.Engine.Index.Len())

	ctx := context.Background()
	all := *table == 0 && *figure == 0 && !*pilot && !*post && !*future
	runTable := func(n int) bool { return all || *table == n }

	if runTable(1) {
		fmt.Println(env.Table1())
	}
	if runTable(2) {
		fmt.Println(env.Table2())
	}
	if runTable(3) {
		fmt.Println(env.Table3())
	}
	if runTable(4) {
		t4, err := env.Table4(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table 4 failed:", err)
			os.Exit(1)
		}
		fmt.Println(t4)
	}
	if runTable(5) {
		t5, err := env.Table5(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table 5 failed:", err)
			os.Exit(1)
		}
		fmt.Println(t5)
	}
	if all || *pilot {
		fmt.Println(env.Pilots(ctx))
	}
	if all || *table == 5 {
		gr, err := env.Groundedness(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groundedness failed:", err)
			os.Exit(1)
		}
		fmt.Println(gr)
		fmt.Println()
	}
	if all || *post {
		pl, err := env.PostLaunch(ctx, 600)
		if err != nil {
			fmt.Fprintln(os.Stderr, "post-launch failed:", err)
			os.Exit(1)
		}
		fmt.Println(pl)
	}
	if all || *future {
		ar, err := env.FutureWorkAdapter(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adapter experiment failed:", err)
			os.Exit(1)
		}
		fmt.Println(ar)
		kr, err := env.FutureWorkKnowledgeGraph(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knowledge-graph experiment failed:", err)
			os.Exit(1)
		}
		fmt.Println(kr)
	}
	if all || *figure == 2 {
		fmt.Println(experiments.Figure2())
	}
	if all || *figure == 3 {
		f3, err := env.Figure3(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure 3 failed:", err)
			os.Exit(1)
		}
		fmt.Println(f3)
	}
}
