// Command uniask-eval evaluates retrieval quality over the generated query
// datasets with configurable retrieval options, printing the standard IR
// metrics (p@n, r@n, hit@n, MRR). It is the workbench tool behind the
// parameter choices of §7 (e.g. the vector-K sweep that selected K=15).
//
// Usage:
//
//	uniask-eval [-docs 3000] [-dataset human|keyword] [-split test|validation]
//	            [-mode hybrid|text|vector] [-k 15] [-n 50] [-rrfc 60]
//	            [-boost 0] [-expansion none|qga|mq1|mq2] [-sweep-k]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"uniask/internal/eval"
	"uniask/internal/experiments"
	"uniask/internal/kb"
	"uniask/internal/search"
)

func main() {
	var (
		docs      = flag.Int("docs", 3000, "corpus size")
		human     = flag.Int("human", 600, "human dataset size")
		keyword   = flag.Int("keyword", 300, "keyword dataset size")
		seed      = flag.Int64("seed", 1, "generation seed")
		dataset   = flag.String("dataset", "human", "dataset: human or keyword")
		split     = flag.String("split", "test", "split: test or validation")
		mode      = flag.String("mode", "hybrid", "retrieval mode: hybrid, text, vector")
		k         = flag.Int("k", 15, "vector search K")
		n         = flag.Int("n", 50, "text search N")
		rrfc      = flag.Int("rrfc", 60, "RRF constant")
		boost     = flag.Float64("boost", 0, "title boost multiplier (0 = off)")
		expansion = flag.String("expansion", "none", "query expansion: none, qga, mq1, mq2")
		sweepK    = flag.Bool("sweep-k", false, "reproduce the §7 K sweep (overrides -k)")
	)
	flag.Parse()

	env, err := experiments.Setup(context.Background(), experiments.Scale{
		Docs: *docs, Human: *human, Keyword: *keyword, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	var ds kb.Dataset
	switch *dataset + "/" + *split {
	case "human/test":
		ds = env.HumanTest
	case "human/validation":
		ds = env.HumanVal
	case "keyword/test":
		ds = env.KeywordTest
	case "keyword/validation":
		ds = env.KeywordVal
	default:
		fmt.Fprintln(os.Stderr, "unknown dataset/split:", *dataset, *split)
		os.Exit(2)
	}

	opts := search.Options{TextN: *n, VectorK: *k, RRFC: *rrfc, TitleBoost: *boost}
	switch *mode {
	case "text":
		opts.Mode = search.TextOnly
	case "vector":
		opts.Mode = search.VectorOnly
	}
	switch *expansion {
	case "qga":
		opts.Expansion = search.QGA
	case "mq1":
		opts.Expansion = search.MQ1
	case "mq2":
		opts.Expansion = search.MQ2
	}

	if *sweepK {
		// The paper explored K in {3,5,10,...,50} on both validation sets
		// and picked 15.
		fmt.Printf("K sweep on %s (%s split):\n", *dataset, *split)
		fmt.Printf("%4s %8s %8s %8s\n", "K", "hit@4", "r@50", "MRR")
		for _, kk := range []int{3, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
			o := opts
			o.VectorK = kk
			s := eval.Evaluate(ds, env.UniAskRetriever(o))
			m := s.OverAll
			fmt.Printf("%4d %8.4f %8.4f %8.4f\n", kk, m.Hit4, m.R50, m.MRR)
		}
		return
	}

	s := eval.Evaluate(ds, env.UniAskRetriever(opts))
	fmt.Printf("dataset=%s split=%s queries=%d answered=%.1f%%\n",
		*dataset, *split, s.Queries, 100*s.AnsweredRate())
	vals := s.OverAll.Values()
	for i, name := range eval.MetricNames {
		fmt.Printf("%-8s %8.4f\n", name, vals[i])
	}
}
