// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so the Makefile's bench target can emit a
// machine-readable BENCH_query.json next to the human-readable log.
//
//	go test -bench . -benchmem ./internal/index/ | benchjson > BENCH_query.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the runner settled on.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric extras (e.g. docs/sec, p99-ns/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkSearchText-8   17612   67289 ns/op   3066 B/op   10 allocs/op
//
// Custom b.ReportMetric units print between ns/op and B/op, e.g.
//
//	BenchmarkIngestSegmented-8   21097   56237 ns/op   17782 docs/sec   5731 B/op   77 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op((?:\s+[\d.eE+-]+ \S+)*)\s*$`)

// metricPair splits the tail of a benchmark line into value/unit pairs.
var metricPair = regexp.MustCompile(`([\d.eE+-]+) (\S+)`)

func main() {
	baselinePath := flag.String("baseline", "",
		"JSON file with pre-change numbers to embed under \"baseline\" (skipped when absent)")
	note := flag.String("note", "",
		"free-text annotation embedded under \"note\" (methodology caveats, measurement context)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			// Pass non-benchmark lines through to stderr so the terminal
			// still shows the usual go test chatter.
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			switch pair[2] {
			case "B/op":
				b, _ := strconv.ParseInt(pair[1], 10, 64)
				r.BytesPerOp = &b
			case "allocs/op":
				a, _ := strconv.ParseInt(pair[1], 10, 64)
				r.AllocsPerOp = &a
			default:
				v, err := strconv.ParseFloat(pair[1], 64)
				if err != nil {
					continue
				}
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[pair[2]] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := map[string]any{"benchmarks": results}
	if *note != "" {
		out["note"] = *note
	}
	if *baselinePath != "" {
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var baseline any
			if err := json.Unmarshal(raw, &baseline); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
				os.Exit(1)
			}
			out["baseline"] = baseline
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
