// Command uniask-chat is an interactive terminal client for UniAsk's
// conversational API: it builds (or loads) an index over the synthetic
// knowledge base, serves it on an in-process HTTP listener, and runs a
// multi-turn chat against POST /api/sessions/{sid}/ask — streaming the
// citation list and answer tokens over SSE exactly as a browser client
// would, with follow-up questions rewritten against the session history.
//
// Usage:
//
//	uniask-chat [-docs 3000] [-seed 1] [-index-file uniask.idx]
//
// In the prompt, ":click N" reports a click on the N-th cited document of
// the previous answer (the feedback loop that recalibrates the reranker);
// CTRL-D exits.
//
// With -index-file the index is loaded from the file when it exists and
// saved to it after a fresh build, so restarts are instant.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"uniask"
	"uniask/internal/sse"
)

func main() {
	var (
		docs      = flag.Int("docs", 3000, "synthetic corpus size")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		indexFile = flag.String("index-file", "", "persist/load the index here")
	)
	flag.Parse()
	ctx := context.Background()

	corpus := uniask.SyntheticCorpus(*docs, *seed)
	var sys *uniask.System

	start := time.Now()
	if *indexFile != "" {
		if f, err := os.Open(*indexFile); err == nil {
			sys = uniask.New(uniask.Config{Lexicon: corpus.Lexicon()})
			if err := sys.LoadIndex(f); err != nil {
				fmt.Fprintln(os.Stderr, "load failed:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "index loaded from %s in %v (%d chunks)\n",
				*indexFile, time.Since(start).Round(time.Millisecond), sys.IndexedChunks())
		}
	}
	if sys == nil {
		var err error
		sys, err = uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "build failed:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "index built in %v (%d chunks)\n",
			time.Since(start).Round(time.Millisecond), sys.IndexedChunks())
		if *indexFile != "" {
			f, err := os.Create(*indexFile)
			if err == nil {
				if err := sys.SaveIndex(f); err == nil {
					fmt.Fprintf(os.Stderr, "index saved to %s\n", *indexFile)
				}
				f.Close()
			}
		}
	}

	// The chat speaks the same HTTP+SSE surface a browser would, against an
	// in-process loopback listener — no second process to manage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen failed:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: sys.NewServer().Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	c := &chatClient{base: "http://" + ln.Addr().String(), hc: &http.Client{}}
	if err := c.login("chat"); err != nil {
		fmt.Fprintln(os.Stderr, "login failed:", err)
		os.Exit(1)
	}
	if err := c.newSession(); err != nil {
		fmt.Fprintln(os.Stderr, "session failed:", err)
		os.Exit(1)
	}

	fmt.Println("UniAsk — fai una domanda in italiano (CTRL-D per uscire).")
	fmt.Println("Esempio:", "Come posso "+strings.ToLower(corpus.Docs[0].Title)+"?")
	fmt.Println("Dopo una risposta, \":click N\" segnala il documento N come utile.")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("\n> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":esci":
			return
		case strings.HasPrefix(line, ":click"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ":click"))
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				fmt.Println("uso: :click N  (N = numero del documento nell'ultima risposta)")
				continue
			}
			if err := c.click(n - 1); err != nil {
				fmt.Println("errore:", err)
			}
		default:
			if err := c.ask(line); err != nil {
				fmt.Println("errore:", err)
			}
		}
	}
}

// chatClient is the terminal's view of one conversation.
type chatClient struct {
	base    string
	hc      *http.Client
	token   string
	session string
	// lastTurn / lastDocs back the :click command.
	lastTurn int
	lastDocs []chatDoc
}

type chatDoc struct {
	ID     string `json:"id"`
	Parent string `json:"parent"`
	Title  string `json:"title"`
}

func (c *chatClient) post(path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (c *chatClient) login(user string) error {
	var out struct {
		Token string `json:"token"`
	}
	if err := c.post("/api/login", map[string]string{"user": user}, &out); err != nil {
		return err
	}
	c.token = out.Token
	return nil
}

func (c *chatClient) newSession() error {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.post("/api/sessions", struct{}{}, &out); err != nil {
		return err
	}
	c.session = out.ID
	c.lastDocs = nil
	return nil
}

// ask streams one turn, printing citations and tokens as they arrive.
func (c *chatClient) ask(question string) error {
	payload, _ := json.Marshal(map[string]string{"question": question})
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/sessions/"+c.session+"/ask", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The session expired or was evicted: start a fresh one and retry
		// the turn (history is gone, the question stands alone).
		io.Copy(io.Discard, resp.Body)
		if err := c.newSession(); err != nil {
			return err
		}
		fmt.Println("  [sessione scaduta — nuova conversazione]")
		return c.ask(question)
	}
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	var (
		p        sse.Parser
		buf      = make([]byte, 4096)
		streamed bool
		done     bool
	)
	for !done {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			events, _ := p.Feed(buf[:n]) // oversized events are dropped, not fatal
			for _, ev := range events {
				if c.handleEvent(ev, t0, &streamed) {
					done = true
				}
			}
		}
		if readErr != nil {
			if readErr != io.EOF {
				return readErr
			}
			break
		}
	}
	if streamed {
		fmt.Println()
	}
	if !done {
		return fmt.Errorf("stream ended without a done event")
	}
	return nil
}

// handleEvent renders one SSE event; reports true on the terminal done.
func (c *chatClient) handleEvent(ev sse.Event, t0 time.Time, streamed *bool) bool {
	switch ev.Name {
	case "citations":
		var payload struct {
			Documents []chatDoc `json:"documents"`
		}
		if json.Unmarshal([]byte(ev.Data), &payload) != nil {
			return false
		}
		c.lastDocs = payload.Documents
		fmt.Printf("  [fonti in %v]\n", time.Since(t0).Round(time.Millisecond))
		for i, d := range payload.Documents {
			if i == 3 {
				break
			}
			fmt.Printf("  %d. %s — %s\n", i+1, d.Parent, d.Title)
		}
	case "token":
		var tok struct {
			Text string `json:"text"`
		}
		if json.Unmarshal([]byte(ev.Data), &tok) != nil {
			return false
		}
		fmt.Print(tok.Text)
		*streamed = true
	case "fallback":
		var fb struct {
			Answer string `json:"answer"`
		}
		if json.Unmarshal([]byte(ev.Data), &fb) != nil {
			return false
		}
		// The streamed tokens were a prefix of an abandoned answer.
		if *streamed {
			fmt.Println()
			*streamed = false
		}
		fmt.Println("  [generazione degradata — risposta estrattiva]")
		fmt.Print(fb.Answer)
		*streamed = true
	case "done":
		var d struct {
			Answer         string `json:"answer"`
			Guardrail      string `json:"guardrail"`
			AnswerValid    bool   `json:"answerValid"`
			RewrittenQuery string `json:"rewrittenQuery"`
			TraceID        string `json:"traceId"`
			Turn           int    `json:"turn"`
			Error          string `json:"error"`
		}
		if json.Unmarshal([]byte(ev.Data), &d) == nil {
			if *streamed {
				fmt.Println()
				*streamed = false
			}
			if d.Error != "" {
				fmt.Println("errore:", d.Error)
				return true
			}
			if !d.AnswerValid {
				// Guardrail fired: the streamed tokens were replaced by the
				// apology/clarification answer.
				fmt.Print(d.Answer)
				fmt.Println()
			}
			c.lastTurn = d.Turn
			extra := ""
			if d.RewrittenQuery != "" {
				extra = " | riscritta: " + d.RewrittenQuery
			}
			fmt.Printf("  [guardrail: %s | %v%s]\n", d.Guardrail, time.Since(t0).Round(time.Millisecond), extra)
		}
		return true
	}
	return false
}

// click reports the i-th document of the last answer as clicked.
func (c *chatClient) click(i int) error {
	if i >= len(c.lastDocs) {
		return fmt.Errorf("l'ultima risposta ha %d documenti", len(c.lastDocs))
	}
	var out struct {
		Applied bool   `json:"applied"`
		Version uint64 `json:"version"`
	}
	err := c.post("/api/sessions/"+c.session+"/feedback",
		map[string]interface{}{"turn": c.lastTurn, "chunkId": c.lastDocs[i].ID}, &out)
	if err != nil {
		return err
	}
	if out.Applied {
		fmt.Printf("  [feedback registrato — pesi rerank v%d]\n", out.Version)
	} else {
		fmt.Println("  [feedback registrato]")
	}
	return nil
}
