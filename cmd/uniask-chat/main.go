// Command uniask-chat is an interactive terminal client for UniAsk: it
// builds (or loads) an index over the synthetic knowledge base and answers
// questions typed on stdin, showing the generated answer, the guardrail
// verdict and the top documents — the terminal equivalent of the FrontEnd
// search box.
//
// Usage:
//
//	uniask-chat [-docs 3000] [-seed 1] [-index-file uniask.idx]
//
// With -index-file the index is loaded from the file when it exists and
// saved to it after a fresh build, so restarts are instant.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uniask"
)

func main() {
	var (
		docs      = flag.Int("docs", 3000, "synthetic corpus size")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		indexFile = flag.String("index-file", "", "persist/load the index here")
	)
	flag.Parse()
	ctx := context.Background()

	corpus := uniask.SyntheticCorpus(*docs, *seed)
	var sys *uniask.System

	start := time.Now()
	if *indexFile != "" {
		if f, err := os.Open(*indexFile); err == nil {
			sys = uniask.New(uniask.Config{Lexicon: corpus.Lexicon()})
			if err := sys.LoadIndex(f); err != nil {
				fmt.Fprintln(os.Stderr, "load failed:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "index loaded from %s in %v (%d chunks)\n",
				*indexFile, time.Since(start).Round(time.Millisecond), sys.IndexedChunks())
		}
	}
	if sys == nil {
		var err error
		sys, err = uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "build failed:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "index built in %v (%d chunks)\n",
			time.Since(start).Round(time.Millisecond), sys.IndexedChunks())
		if *indexFile != "" {
			f, err := os.Create(*indexFile)
			if err == nil {
				if err := sys.SaveIndex(f); err == nil {
					fmt.Fprintf(os.Stderr, "index saved to %s\n", *indexFile)
				}
				f.Close()
			}
		}
	}

	fmt.Println("UniAsk — fai una domanda in italiano (CTRL-D per uscire).")
	fmt.Println("Esempio:", "Come posso "+strings.ToLower(corpus.Docs[0].Title)+"?")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("\n> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			continue
		}
		t0 := time.Now()
		resp, err := sys.Ask(ctx, q)
		if err != nil {
			fmt.Println("errore:", err)
			continue
		}
		fmt.Println(resp.Answer)
		fmt.Printf("  [guardrail: %s | %v]\n", resp.Guardrail, time.Since(t0).Round(time.Millisecond))
		for i, d := range resp.Documents {
			if i == 3 {
				break
			}
			fmt.Printf("  %d. %s — %s\n", i+1, d.ParentID, d.Title)
		}
	}
}
