// Command uniask-loadtest reproduces the Figure-2 load test: an
// open-system arrival process ramping from 1 to 3 users/second over 60
// virtual minutes, 7200 tokens per request, against the token-rate-limited
// LLM service. Virtual time makes the one-hour test complete in
// milliseconds.
//
// Usage:
//
//	uniask-loadtest [-minutes 60] [-initial 1] [-target 3] [-tokens 7200] [-quota 1020000]
package main

import (
	"flag"
	"fmt"
	"time"

	"uniask/internal/llm"
	"uniask/internal/loadtest"
	"uniask/internal/monitor"
	"uniask/internal/vclock"
)

func main() {
	var (
		minutes = flag.Int("minutes", 60, "test window in (virtual) minutes")
		initial = flag.Float64("initial", 1, "initial user arrival rate per second")
		target  = flag.Float64("target", 3, "target user arrival rate per second")
		tokens  = flag.Int("tokens", 7200, "tokens per request")
		quota   = flag.Int("quota", 1_020_000, "LLM service token quota per minute (0 = unlimited)")
	)
	flag.Parse()

	clk := vclock.NewVirtual(time.Date(2025, 1, 1, 9, 0, 0, 0, time.UTC))
	svc := llm.NewService(llm.NewSim(llm.DefaultBehavior()), llm.ServiceConfig{
		TokensPerMinute: *quota,
		BurstTokens:     *quota,
		Clock:           clk,
	})
	metrics := monitor.New()
	report := loadtest.Run(svc, clk, loadtest.Config{
		Duration:         time.Duration(*minutes) * time.Minute,
		InitialRate:      *initial,
		TargetRate:       *target,
		TokensPerRequest: *tokens,
		Observer:         metrics,
	})
	fmt.Println(report)
	// Per-request stage stats (count, rejections, wall-clock latency of
	// the rate-limited service call) through the same observer hook the
	// query pipeline reports into.
	fmt.Print(metrics.Snapshot().StagesString())
}
