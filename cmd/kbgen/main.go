// Command kbgen generates the synthetic Italian banking knowledge base and
// exports it as HTML files plus a query-dataset JSON, so the corpus can be
// inspected or consumed by external tools.
//
// Usage:
//
//	kbgen [-docs 1000] [-seed 1] [-out ./kbdump] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uniask/internal/kb"
)

func main() {
	var (
		docs  = flag.Int("docs", 1000, "number of documents (paper: 59308)")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("out", "", "output directory (omit to skip export)")
		stats = flag.Bool("stats", true, "print corpus statistics")
		human = flag.Int("human", 100, "human questions to export")
		kw    = flag.Int("keyword", 50, "keyword queries to export")
	)
	flag.Parse()

	corpus := kb.Generate(kb.GenConfig{Docs: *docs, Seed: *seed})
	if *stats {
		s := corpus.ComputeStats()
		fmt.Printf("documents:      %d\n", s.Docs)
		fmt.Printf("avg words:      %.1f (paper: 248)\n", s.AvgWords)
		fmt.Printf("avg paragraphs: %.1f (paper: 7.6)\n", s.AvgParagraphs)
		fmt.Printf("dup clusters:   %d (%d documents, %.1f%%)\n",
			s.Clusters, s.ClusteredDocs, 100*float64(s.ClusteredDocs)/float64(s.Docs))
	}
	if *out == "" {
		return
	}
	pagesDir := filepath.Join(*out, "pages")
	if err := os.MkdirAll(pagesDir, 0o755); err != nil {
		fatal(err)
	}
	for _, d := range corpus.Docs {
		if err := os.WriteFile(filepath.Join(pagesDir, d.ID+".html"), []byte(d.HTML), 0o644); err != nil {
			fatal(err)
		}
	}
	type exportQuery struct {
		ID       string   `json:"id"`
		Text     string   `json:"text"`
		Relevant []string `json:"relevant"`
		Answer   string   `json:"answer,omitempty"`
	}
	export := func(name string, ds kb.Dataset) {
		var qs []exportQuery
		for _, q := range ds.Queries {
			qs = append(qs, exportQuery{ID: q.ID, Text: q.Text, Relevant: q.Relevant, Answer: q.Answer})
		}
		data, _ := json.MarshalIndent(qs, "", "  ")
		if err := os.WriteFile(filepath.Join(*out, name+".json"), data, 0o644); err != nil {
			fatal(err)
		}
	}
	export("human", corpus.HumanDataset(*human, *seed+100))
	export("keyword", corpus.KeywordDataset(*kw, *seed+200))
	fmt.Printf("exported %d pages and query datasets to %s\n", len(corpus.Docs), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
