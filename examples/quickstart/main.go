// Quickstart: build a UniAsk system over a small synthetic banking
// knowledge base and ask it a natural-language question, printing the
// generated answer with its citations and the retrieved document list.
package main

import (
	"context"
	"fmt"
	"log"

	"uniask"
)

func main() {
	ctx := context.Background()

	// 1. A synthetic Italian banking knowledge base (the paper's deployment
	//    indexed 59308 documents; 800 keeps the quickstart snappy).
	corpus := uniask.SyntheticCorpus(800, 42)

	// 2. Build the system: ingestion -> chunking -> hybrid index.
	sys, err := uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d chunks from %d documents\n\n", sys.IndexedChunks(), len(corpus.Docs))

	// 3. Ask a question in natural language. We phrase it about the first
	//    corpus document so the demo is self-contained.
	question := "Come posso " + lower(corpus.Docs[0].Title) + "?"
	fmt.Println("Q:", question)

	resp, err := sys.Ask(ctx, question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A:", resp.Answer)
	fmt.Println("   guardrail:", resp.Guardrail, "| valid:", resp.AnswerValid)
	if len(resp.Citations) > 0 {
		fmt.Println("   citations:", resp.Citations)
	}

	fmt.Println("\nTop documents:")
	for i, d := range resp.Documents {
		if i == 4 {
			break
		}
		fmt.Printf("  %d. [%s] %s (score %.3f)\n", i+1, d.ParentID, d.Title, d.Score)
	}
}

func lower(s string) string {
	if s == "" {
		return s
	}
	b := []rune(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}
