// Corner cases: exercise the guardrail pipeline the way the paper's SMEs
// did with their 500-question corner-case catalogue (§8) — precise
// error-code questions, out-of-scope traps, and inappropriate language —
// and report which guardrail handled each class.
package main

import (
	"context"
	"fmt"
	"log"

	"uniask"
)

func main() {
	ctx := context.Background()
	corpus := uniask.SyntheticCorpus(1500, 4)
	sys, err := uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Error-code questions (a wrong answer is unacceptable) ===")
	errs := corpus.ErrorCodeDataset(5, 11)
	for _, q := range errs.Queries {
		resp, err := sys.Ask(ctx, q.Text)
		if err != nil {
			log.Fatal(err)
		}
		status := "ANSWERED"
		if !resp.AnswerValid {
			status = "BLOCKED (" + resp.Guardrail.String() + ")"
		}
		citedTruth := false
		for _, c := range resp.Citations {
			if parent(c) == q.Relevant[0] {
				citedTruth = true
			}
		}
		fmt.Printf("  %-28q %-22s cites-exact-code-doc=%v\n", q.Text, status, citedTruth)
	}

	fmt.Println("\n=== Out-of-scope questions (must be refused) ===")
	oos := corpus.OutOfScopeDataset(5, 12)
	for _, q := range oos.Queries {
		resp, err := sys.Ask(ctx, q.Text)
		if err != nil {
			log.Fatal(err)
		}
		status := "LEAKED!"
		if !resp.AnswerValid {
			status = "blocked by " + resp.Guardrail.String()
		}
		fmt.Printf("  %-52q %s\n", q.Text, status)
	}

	fmt.Println("\n=== Inappropriate language (content filter) ===")
	for _, q := range []string{
		"questo maledetto sistema non funziona, come apro un conto?",
		"il supporto è schifoso, chi devo chiamare?",
	} {
		resp, err := sys.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-58q guardrail=%s docs-shown=%d\n", q, resp.Guardrail, len(resp.Documents))
	}

	fmt.Println("\nNote: when a guardrail fires, UniAsk still shows the retrieved")
	fmt.Println("document list (except for content-filtered questions) — a guardrail")
	fmt.Println("is a failure of the generation module, not of the whole system.")
}

func parent(chunkID string) string {
	for i := len(chunkID) - 1; i >= 0; i-- {
		if chunkID[i] == '#' {
			return chunkID[:i]
		}
	}
	return chunkID
}
