// Multi-tenant serving: two banks with different quotas share one UniAsk
// deployment. banca-alfa is interactive with a roomy envelope; banca-batch
// is a best-effort tenant with a tight rate limit that we deliberately
// flood from 8 workers. The admission front door sheds the flood with
// 429 + Retry-After while banca-alfa's p99 stays put — the noisy-neighbor
// experiment from internal/chaos in miniature (docs/MULTITENANCY.md).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"uniask"
)

const overrides = `{
  "defaults": {"cacheShare": 64},
  "tenants": {
    "banca-alfa":  {"rate": 2000, "burst": 2000, "maxConcurrent": 8},
    "banca-batch": {"class": "best-effort", "rate": 20, "burst": 20, "maxConcurrent": 4}
  }
}`

func main() {
	dir, err := os.MkdirTemp("", "uniask-multitenant")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "overrides.json")
	if err := os.WriteFile(path, []byte(overrides), 0o644); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	api, err := uniask.NewMultiTenantServer(ctx, uniask.MultiTenantConfig{
		OverridesPath: path,
		Admission:     uniask.AdmissionConfig{Capacity: 16},
		Corpus: func(tenantID string) *uniask.Corpus {
			return uniask.SyntheticCorpus(300, int64(len(tenantID)))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	fmt.Println("two-tenant service up at", srv.URL)

	token := login(srv.URL)
	queries := []string{
		"conto corrente", "carta di credito", "bonifico estero",
		"errore bonifico", "apertura conto",
	}

	// Phase 1 — banca-alfa alone: the solo latency baseline.
	solo := make([]time.Duration, 0, 40)
	for i := 0; i < 40; i++ {
		_, lat := search(srv.URL, token, "banca-alfa", queries[i%len(queries)])
		solo = append(solo, lat)
	}

	// Phase 2 — banca-batch floods from 8 workers (200 requests against a
	// 20-token bucket) while banca-alfa keeps its sequential pace.
	var (
		mu       sync.Mutex
		batchOK  int
		batch429 int
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, _ := search(srv.URL, token, "banca-batch", queries[(w+i)%len(queries)])
				mu.Lock()
				switch code {
				case http.StatusOK:
					batchOK++
				case http.StatusTooManyRequests:
					batch429++
				default:
					log.Fatalf("banca-batch got %d; shedding must be 429, never 5xx", code)
				}
				mu.Unlock()
			}
		}(w)
	}
	noisy := make([]time.Duration, 0, 40)
	alfaShed := 0
	for i := 0; i < 40; i++ {
		code, lat := search(srv.URL, token, "banca-alfa", queries[i%len(queries)])
		if code != http.StatusOK {
			alfaShed++
			continue
		}
		noisy = append(noisy, lat)
	}
	wg.Wait()

	fmt.Println()
	fmt.Printf("banca-alfa  (interactive): p99 solo %-8v p99 under flood %-8v shed %d\n",
		p99(solo).Round(time.Microsecond), p99(noisy).Round(time.Microsecond), alfaShed)
	fmt.Printf("banca-batch (best-effort): %d served, %d shed with 429 + Retry-After\n",
		batchOK, batch429)

	// The server-side view of the same story: per-tenant dashboard gauges.
	for _, id := range []string{"banca-alfa", "banca-batch"} {
		var dash struct {
			Gauges struct {
				Admitted     uint64            `json:"Admitted"`
				Shed         uint64            `json:"Shed"`
				ShedByReason map[string]uint64 `json:"ShedByReason"`
			} `json:"gauges"`
		}
		get(srv.URL+"/t/"+id+"/api/dashboard", &dash)
		fmt.Printf("  /t/%s/api/dashboard: admitted %d, shed %d %v\n",
			id, dash.Gauges.Admitted, dash.Gauges.Shed, dash.Gauges.ShedByReason)
	}
}

func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1))]
}

func login(base string) string {
	body, _ := json.Marshal(map[string]string{"user": "operatore"})
	resp, err := http.Post(base+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Token string `json:"token"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Token
}

// search runs one tenant-scoped query (header routing) and returns the
// status code and round-trip latency. A 429 must carry Retry-After.
func search(base, token, tenantID, q string) (int, time.Duration) {
	req, _ := http.NewRequest("GET", base+"/api/search?q="+url.QueryEscape(q), nil)
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("X-Uniask-Tenant", tenantID)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
		log.Fatal("429 without Retry-After")
	}
	return resp.StatusCode, time.Since(start)
}

func get(u string, out interface{}) {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(out)
}
