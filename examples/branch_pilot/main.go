// Branch pilot: simulate the paper's Phase-2 pilot (§8) — branch employees
// asking natural-language questions, the granular feedback modal, and the
// weekly review metrics the team tracked: proper-answer rate, positive
// feedback, and the breakdown of failure causes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"uniask"
)

func main() {
	ctx := context.Background()
	corpus := uniask.SyntheticCorpus(2000, 9)
	sys, err := uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 150 branch users, each asking a couple of questions.
	questions := corpus.HumanDataset(300, 77).Queries
	rng := rand.New(rand.NewSource(5))

	var (
		proper, blocked   int
		feedbacks         int
		positive          int
		byGuardrail       = map[string]int{}
		negativeGrounding int
	)
	for _, q := range questions {
		resp, err := sys.Ask(ctx, q.Text)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.AnswerValid {
			blocked++
			byGuardrail[resp.Guardrail.String()]++
			continue
		}
		proper++
		// 90% of the selected branch users fill the feedback form (they
		// were picked for being active on internal tools).
		if rng.Float64() > 0.9 {
			continue
		}
		feedbacks++
		// A user rates positive when the answer cites one of the pages that
		// actually answers the question.
		relevant := map[string]bool{}
		for _, id := range q.Relevant {
			relevant[id] = true
		}
		cited := false
		for _, c := range resp.Citations {
			if relevant[parent(c)] {
				cited = true
				break
			}
		}
		switch {
		case cited && rng.Float64() < 0.93:
			positive++
		case !cited:
			negativeGrounding++
			if rng.Float64() < 0.55 {
				positive++
			}
		}
	}

	fmt.Println("Phase 2 pilot — branch users")
	fmt.Printf("  questions asked:        %d\n", len(questions))
	fmt.Printf("  proper answers:         %d (%.1f%%)  [paper: 91%%]\n", proper, pct(proper, len(questions)))
	fmt.Printf("  guardrail blocks:       %d %v\n", blocked, byGuardrail)
	fmt.Printf("  feedbacks collected:    %d\n", feedbacks)
	fmt.Printf("  positive feedback:      %d (%.1f%%)  [paper: 84%%]\n", positive, pct(positive, feedbacks))
	fmt.Printf("  answers grounded on a\n")
	fmt.Printf("  non-expert-linked page: %d  (the overlap failure mode §8 describes)\n", negativeGrounding)
}

func parent(chunkID string) string {
	for i := len(chunkID) - 1; i >= 0; i-- {
		if chunkID[i] == '#' {
			return chunkID[:i]
		}
	}
	return chunkID
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
