// Live updates: exercise the §3 ingestion flow end to end — the knowledge
// base is edited while the system is serving, the ingester polls for
// modifications every 15 (virtual) minutes, and the index reflects edits
// and deletions without a rebuild.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uniask"
	"uniask/internal/ingest"
	"uniask/internal/vclock"
)

// editableKB is a mutable page source standing in for the bank's CMS.
type editableKB struct{ pages map[string]string }

func (k *editableKB) Pages() []ingest.Page {
	var out []ingest.Page
	for id, html := range k.pages {
		out = append(out, ingest.Page{ID: id, HTML: html})
	}
	return out
}

func page(title, body string) string {
	return "<html><head><title>" + title + "</title></head><body><h1>" + title + "</h1><p>" + body + "</p></body></html>"
}

func main() {
	ctx := context.Background()
	sys := uniask.New(uniask.Config{})
	engine := sys.Engine()

	kbase := &editableKB{pages: map[string]string{
		"pg1": page("Blocco carta di credito", "Per bloccare la carta chiamare il numero verde 800-001."),
		"pg2": page("Bonifico estero", "Il bonifico estero richiede il codice BIC della banca beneficiaria."),
	}}

	clk := vclock.NewVirtual(time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC))
	sync := engine.NewPoller(ctx, kbase)

	show := func(q string) {
		res, err := sys.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			fmt.Printf("  %-28q -> (nessun risultato)\n", q)
			return
		}
		fmt.Printf("  %-28q -> %s: %.60s…\n", q, res[0].ParentID, res[0].Content)
	}

	fmt.Println("T+0: initial sync")
	if _, err := sync(); err != nil {
		log.Fatal(err)
	}
	show("numero verde blocco carta")

	fmt.Println("\nT+15m: the editors change the toll-free number")
	kbase.pages["pg1"] = page("Blocco carta di credito", "Per bloccare la carta chiamare il NUOVO numero verde 800-999.")
	clk.Advance(15 * time.Minute)
	if _, err := sync(); err != nil {
		log.Fatal(err)
	}
	show("numero verde blocco carta")

	fmt.Println("\nT+30m: the bonifico page is retired, a new one appears")
	delete(kbase.pages, "pg2")
	kbase.pages["pg3"] = page("Bonifico istantaneo", "Il bonifico istantaneo è accreditato in dieci secondi.")
	clk.Advance(15 * time.Minute)
	if _, err := sync(); err != nil {
		log.Fatal(err)
	}
	show("bonifico estero codice BIC")
	show("bonifico istantaneo")

	fmt.Printf("\nindex: %d chunks ever inserted, %d live\n",
		engine.Index.Len(), engine.Index.LiveLen())
}
