// Ops dashboard: run the full UniAsk service end-to-end over HTTP — login,
// questions from simulated employees, feedback submissions — then print the
// Figure-3 monitoring dashboard assembled from the service metrics.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"uniask"
	"uniask/internal/monitor"
)

func main() {
	ctx := context.Background()
	corpus := uniask.SyntheticCorpus(1000, 3)
	sys, err := uniask.NewFromCorpus(ctx, corpus, uniask.Config{})
	if err != nil {
		log.Fatal(err)
	}
	api := sys.NewServer()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	fmt.Println("service up at", srv.URL)

	rng := rand.New(rand.NewSource(8))
	questions := corpus.HumanDataset(60, 31).Queries

	for i, q := range questions {
		user := fmt.Sprintf("employee%02d", rng.Intn(15))
		token := login(srv.URL, user)

		var askResp struct {
			AnswerValid bool   `json:"answerValid"`
			Guardrail   string `json:"guardrail"`
		}
		post(srv.URL+"/api/ask", token, map[string]string{"question": q.Text}, &askResp)

		// Half the users leave feedback through the modal.
		if i%2 == 0 {
			rating := 4
			if !askResp.AnswerValid {
				rating = 2
			}
			post(srv.URL+"/api/feedback", token, map[string]interface{}{
				"query": q.Text, "helpful": askResp.AnswerValid,
				"relevantDocs": true, "rating": rating,
			}, nil)
		}
	}

	var dash monitor.Dashboard
	get(srv.URL+"/api/dashboard", &dash)
	fmt.Println()
	fmt.Print(dash)
}

func login(base, user string) string {
	var out struct {
		Token string `json:"token"`
	}
	post(base+"/api/login", "", map[string]string{"user": user}, &out)
	return out.Token
}

func post(url, token string, payload, out interface{}) {
	body, _ := json.Marshal(payload)
	req, _ := http.NewRequest("POST", url, bytes.NewReader(body))
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
}

func get(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(out)
}
