# Developer entry points. `make check` is the tier-1 verification gate:
# vet + the full test suite with the race detector on, since the query
# pipeline fans retrieval out over a worker pool and the determinism
# tests only mean something when raced.

GO ?= go

.PHONY: all build test race vet check bench bench-paper

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrent packages plus everything that sits
# on top of them. Slower than `make test`; required before merging
# changes to pipeline, search, core, or monitor.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet build race

# Query hot-path micro-benchmarks (BM25, ANN, filter bitsets, query cache)
# with allocation stats, recorded as BENCH_query.json via cmd/benchjson.
bench:
	$(GO) test -bench 'BenchmarkSearchText|BenchmarkSearchVector|BenchmarkFilterSet|BenchmarkQueryCache' \
		-benchmem -run '^$$' ./internal/index/ ./internal/search/ \
		| $(GO) run ./cmd/benchjson -baseline BENCH_query_baseline.json > BENCH_query.json
	@echo "wrote BENCH_query.json"

# Paper-scale end-to-end benchmark (Tables 1-3 reproduction).
bench-paper:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
