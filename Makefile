# Developer entry points. `make check` is the tier-1 verification gate:
# vet + the full test suite with the race detector on, since the query
# pipeline fans retrieval out over a worker pool and the determinism
# tests only mean something when raced.

GO ?= go

.PHONY: all build test race vet check bench bench-paper chaos fuzz-short shardparity doccheck

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrent packages plus everything that sits
# on top of them. Slower than `make test`; required before merging
# changes to pipeline, search, core, or monitor. The experiments package
# rebuilds several paper-scale corpora (now with background segment
# compaction re-indexing merged runs) and needs more than go test's
# default 10m per-package budget under the race detector's ~10x slowdown.
race:
	$(GO) test -race -timeout 20m ./...

vet:
	$(GO) vet ./...

check: vet build race shardparity doccheck fuzz-short

# Cross-check the sharded facade against the monolithic index: byte-identical
# rankings for the Tables 1-3 query sets at every shard count, raced because
# the fan-out is concurrent. Includes the three-way remote harness
# (TestShardParityRemoteThreeWay): remote == in-process == monolithic over
# loopback shard servers at replication 2, through the full
# memtable/tombstone/compaction lifecycle — hence the raised timeout.
shardparity:
	$(GO) test -race -count=1 -timeout 20m -run TestShardParity ./internal/shard/

# Every internal package must carry a package doc comment ("// Package <name>
# ..."), so godoc renders an operator-readable overview of each subsystem.
# Then cmd/doccheck walks README.md, DESIGN.md, OPERATIONS.md and docs/*.md
# and fails on dead intra-repo links (files moved or renamed without their
# references following).
doccheck:
	@set -e; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		grep -l "^// Package $$pkg " $$d*.go >/dev/null || { echo "doccheck: package $$pkg lacks a '// Package $$pkg' doc comment"; exit 1; }; \
	done; echo "doccheck: every internal package is documented"
	$(GO) run ./cmd/doccheck README.md DESIGN.md docs/*.md

# Run the chaos suite 20 times with rotating seeds; each seed draws a
# different fault schedule and query sample, so a pass means the resilience
# guarantees hold across fault orderings, not just the default seed.
CHAOS_RUNS ?= 20
chaos:
	@set -e; for i in $$(seq 1 $(CHAOS_RUNS)); do \
		seed=$$((20250805 + i)); \
		echo "chaos run $$i/$(CHAOS_RUNS) (CHAOS_SEED=$$seed)"; \
		CHAOS_SEED=$$seed $(GO) test -count=1 ./internal/chaos/; \
	done

# Short fuzzing pass over the parsers that consume untrusted / fault-injected
# bytes: the tokenizer+analyzer (arbitrary document text), the citation
# parser (raw LLM output), the TraceQL-lite query parser (the
# /api/traces?q= input), the segment-container snapshot decoder (bytes
# read back from disk) and the remote-shard wire frame/envelope decoders
# (bytes read off the network). Seeds include the checked-in crasher corpora.
FUZZTIME ?= 5s
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME) ./internal/textproc/
	$(GO) test -run '^$$' -fuzz FuzzAnalyze -fuzztime $(FUZZTIME) ./internal/textproc/
	$(GO) test -run '^$$' -fuzz FuzzExtractCitationKeys -fuzztime $(FUZZTIME) ./internal/generation/
	$(GO) test -run '^$$' -fuzz FuzzTraceQL -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzSegmentedManifest -fuzztime $(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz FuzzRemoteWire -fuzztime $(FUZZTIME) ./internal/remote/
	$(GO) test -run '^$$' -fuzz FuzzSSEParser -fuzztime $(FUZZTIME) ./internal/sse/

# Query hot-path micro-benchmarks (BM25, ANN, filter bitsets, query cache,
# shard-count scaling, tracing overhead, ingest-while-query steady state,
# admission-control overhead and the noisy-neighbor p99 delta) with
# allocation stats, recorded as BENCH_query.json via cmd/benchjson.
bench:
	$(GO) test -bench 'BenchmarkSearchText|BenchmarkSearchVector|BenchmarkFilterSet|BenchmarkQueryCache|BenchmarkTrace|BenchmarkIngest|BenchmarkTenant|BenchmarkSession|BenchmarkSSE' \
		-benchmem -run '^$$' ./internal/index/ ./internal/search/ ./internal/shard/ ./internal/trace/ ./internal/tenant/ ./internal/server/ \
		| $(GO) run ./cmd/benchjson -baseline BENCH_query_baseline.json \
			-note "SearchVector* run the int8 quantized arena: traversal orders candidates by int8 dot products, then every surviving candidate (<= ef) is rescored with exact float32 dots before final ranking, so reported latencies include the rescoring pass and scores match the *Float32 control benchmarks exactly." \
			> BENCH_query.json
	@echo "wrote BENCH_query.json"

# Paper-scale end-to-end benchmark (Tables 1-3 reproduction).
bench-paper:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
